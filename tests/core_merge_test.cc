#include <cstddef>

#include <gtest/gtest.h>

#include "analysis/equations.h"
#include "analysis/model_params.h"
#include "core/config.h"
#include "core/experiment.h"
#include "core/merge_simulator.h"
#include "disk/layout.h"
#include "util/status.h"
#include "workload/depletion_generator.h"

namespace emsim::core {
namespace {

MergeConfig SmallConfig() {
  MergeConfig cfg = MergeConfig::Paper(5, 2, 2, Strategy::kDemandRunOnly,
                                       SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 40;
  cfg.check_invariants = true;
  return cfg;
}

TEST(MergeConfigTest, AutoCacheSizes) {
  MergeConfig intra = MergeConfig::Paper(25, 5, 10, Strategy::kDemandRunOnly,
                                         SyncMode::kUnsynchronized);
  EXPECT_EQ(intra.EffectiveCacheBlocks(), 250);  // k*N, the paper's requirement.
  MergeConfig inter = MergeConfig::Paper(25, 5, 10, Strategy::kAllDisksOneRun,
                                         SyncMode::kUnsynchronized);
  EXPECT_GT(inter.EffectiveCacheBlocks(), 1000);  // Ample for success ratio ~1.
  inter.cache_blocks = 123;
  EXPECT_EQ(inter.EffectiveCacheBlocks(), 123);
}

TEST(MergeConfigTest, ValidationRejectsNonsense) {
  MergeConfig cfg = SmallConfig();
  cfg.num_runs = 0;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = SmallConfig();
  cfg.prefetch_depth = 0;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = SmallConfig();
  cfg.prefetch_depth = 41;  // > blocks_per_run
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = SmallConfig();
  cfg.cache_blocks = 3;  // Below one block per run.
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = SmallConfig();
  cfg.cpu_ms_per_block = -1;
  EXPECT_FALSE(cfg.Validate().ok());

  EXPECT_TRUE(SmallConfig().Validate().ok());
}

TEST(MergeConfigTest, TraceValidation) {
  MergeConfig cfg = SmallConfig();
  cfg.depletion = DepletionKind::kTrace;
  cfg.trace = {0, 1};  // Wrong size.
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.trace = workload::RoundRobinDepletionTrace(cfg.num_runs, cfg.blocks_per_run);
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.trace[0] = 99;  // Out of range (and unbalances the counts).
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(MergeSimulatorTest, InvalidConfigReturnsStatus) {
  MergeConfig cfg = SmallConfig();
  cfg.num_disks = 0;
  auto result = SimulateMerge(cfg);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(MergeSimulatorTest, ConservationOfBlocks) {
  auto result = SimulateMerge(SmallConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->blocks_merged, 5 * 40);
  EXPECT_GT(result->total_ms, 0.0);
  // Every block is read from disk exactly once.
  EXPECT_EQ(result->disk_totals.blocks_transferred, 5u * 40u);
  EXPECT_EQ(result->cache_stats.deposits, 5u * 40u);
  EXPECT_EQ(result->cache_stats.consumptions, 5u * 40u);
}

TEST(MergeSimulatorTest, DeterministicForSeed) {
  MergeConfig cfg = SmallConfig();
  cfg.seed = 77;
  auto a = SimulateMerge(cfg);
  auto b = SimulateMerge(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->total_ms, b->total_ms);
  EXPECT_EQ(a->sim_events, b->sim_events);
  EXPECT_EQ(a->io_operations, b->io_operations);
}

TEST(MergeSimulatorTest, SeedsChangeOutcome) {
  MergeConfig cfg = SmallConfig();
  cfg.seed = 1;
  auto a = SimulateMerge(cfg);
  cfg.seed = 2;
  auto b = SimulateMerge(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->total_ms, b->total_ms);
}

TEST(MergeSimulatorTest, NoPrefetchSingleDiskMatchesEq1) {
  MergeConfig cfg = MergeConfig::Paper(25, 1, 1, Strategy::kDemandRunOnly,
                                       SyncMode::kUnsynchronized);
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  analysis::ModelParams p = analysis::ModelParams::Paper(25, 1);
  double expect = analysis::TotalMs(p, analysis::Eq1NoPrefetchSingleDisk(p));
  EXPECT_NEAR(result->total_ms, expect, expect * 0.01);
}

TEST(MergeSimulatorTest, IntraRunSingleDiskMatchesEq2) {
  MergeConfig cfg = MergeConfig::Paper(25, 1, 10, Strategy::kDemandRunOnly,
                                       SyncMode::kUnsynchronized);
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  analysis::ModelParams p = analysis::ModelParams::Paper(25, 1);
  double expect = analysis::TotalMs(p, analysis::Eq2IntraRunSingleDisk(p, 10));
  EXPECT_NEAR(result->total_ms, expect, expect * 0.01);
}

TEST(MergeSimulatorTest, NoPrefetchMultiDiskMatchesEq3) {
  MergeConfig cfg = MergeConfig::Paper(25, 5, 1, Strategy::kDemandRunOnly,
                                       SyncMode::kUnsynchronized);
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  analysis::ModelParams p = analysis::ModelParams::Paper(25, 5);
  double expect = analysis::TotalMs(p, analysis::Eq3NoPrefetchMultiDisk(p));
  EXPECT_NEAR(result->total_ms, expect, expect * 0.01);
}

TEST(MergeSimulatorTest, IntraRunMultiDiskSyncMatchesEq4) {
  MergeConfig cfg = MergeConfig::Paper(25, 5, 10, Strategy::kDemandRunOnly,
                                       SyncMode::kSynchronized);
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  analysis::ModelParams p = analysis::ModelParams::Paper(25, 5);
  double expect = analysis::TotalMs(p, analysis::Eq4IntraRunMultiDiskSync(p, 10));
  EXPECT_NEAR(result->total_ms, expect, expect * 0.01);
}

TEST(MergeSimulatorTest, InterRunSyncMatchesEq5AtFullSuccess) {
  MergeConfig cfg = MergeConfig::Paper(25, 5, 10, Strategy::kAllDisksOneRun,
                                       SyncMode::kSynchronized);
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->SuccessRatio(), 1.0, 0.01);
  analysis::ModelParams p = analysis::ModelParams::Paper(25, 5);
  double expect = analysis::TotalMs(p, analysis::Eq5InterRunSync(p, 10));
  EXPECT_NEAR(result->total_ms, expect, expect * 0.02);
}

TEST(MergeSimulatorTest, SingleDiskSyncEqualsUnsyncIoTime) {
  // With one disk there is no overlap to exploit; the paper says the total
  // I/O time is essentially identical (CPU is infinitely fast here).
  MergeConfig sync_cfg = MergeConfig::Paper(10, 1, 5, Strategy::kDemandRunOnly,
                                            SyncMode::kSynchronized);
  sync_cfg.blocks_per_run = 200;
  MergeConfig unsync_cfg = sync_cfg;
  unsync_cfg.sync = SyncMode::kUnsynchronized;
  auto s = SimulateMerge(sync_cfg);
  auto u = SimulateMerge(unsync_cfg);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(u.ok());
  EXPECT_NEAR(s->total_ms, u->total_ms, s->total_ms * 0.01);
}

TEST(MergeSimulatorTest, UnsyncBeatsSyncOnMultipleDisks) {
  MergeConfig sync_cfg = MergeConfig::Paper(25, 5, 20, Strategy::kDemandRunOnly,
                                            SyncMode::kSynchronized);
  MergeConfig unsync_cfg = sync_cfg;
  unsync_cfg.sync = SyncMode::kUnsynchronized;
  auto s = SimulateMerge(sync_cfg);
  auto u = SimulateMerge(unsync_cfg);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(u.ok());
  EXPECT_LT(u->total_ms, s->total_ms * 0.75);
  EXPECT_GT(u->avg_concurrency, 1.5);
}

TEST(MergeSimulatorTest, UnsyncIntraConcurrencyNearUrnPrediction) {
  MergeConfig cfg = MergeConfig::Paper(25, 5, 30, Strategy::kDemandRunOnly,
                                       SyncMode::kUnsynchronized);
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  // Paper: asymptotic overlap 2.51 for D=5; N=30 is sub-asymptotic, so allow
  // a band below it.
  EXPECT_GT(result->avg_concurrency, 1.9);
  EXPECT_LT(result->avg_concurrency, 2.8);
}

TEST(MergeSimulatorTest, FiniteCpuAddsTimeWhenSynchronized) {
  MergeConfig cfg = MergeConfig::Paper(10, 2, 5, Strategy::kDemandRunOnly,
                                       SyncMode::kSynchronized);
  cfg.blocks_per_run = 100;
  auto fast = SimulateMerge(cfg);
  cfg.cpu_ms_per_block = 0.5;
  auto slow = SimulateMerge(cfg);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  double cpu_total = 0.5 * 10 * 100;
  EXPECT_NEAR(slow->total_ms, fast->total_ms + cpu_total, fast->total_ms * 0.02);
  EXPECT_DOUBLE_EQ(slow->cpu_busy_ms, cpu_total);
}

TEST(MergeSimulatorTest, FiniteCpuOverlapsWhenUnsynchronized) {
  MergeConfig cfg = MergeConfig::Paper(25, 5, 10, Strategy::kAllDisksOneRun,
                                       SyncMode::kUnsynchronized);
  auto fast = SimulateMerge(cfg);
  cfg.cpu_ms_per_block = 0.3;
  auto slow = SimulateMerge(cfg);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  double cpu_total = 0.3 * 25 * 1000;
  // Overlap: the slowdown is well below the full CPU demand.
  EXPECT_LT(slow->total_ms, fast->total_ms + cpu_total * 0.8);
  EXPECT_GT(slow->total_ms, fast->total_ms);
}

TEST(MergeSimulatorTest, TraceDepletionReplaysExactly) {
  MergeConfig cfg = SmallConfig();
  cfg.depletion = DepletionKind::kTrace;
  cfg.trace = workload::RoundRobinDepletionTrace(cfg.num_runs, cfg.blocks_per_run);
  auto a = SimulateMerge(cfg);
  auto b = SimulateMerge(cfg);
  ASSERT_TRUE(a.ok());
  // Trace + fixed seed: fully deterministic.
  EXPECT_DOUBLE_EQ(a->total_ms, b->total_ms);
  EXPECT_EQ(a->blocks_merged, 200);
}

TEST(MergeSimulatorTest, ZipfDepletionCompletes) {
  MergeConfig cfg = SmallConfig();
  cfg.depletion = DepletionKind::kZipf;
  cfg.zipf_theta = 0.99;
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->blocks_merged, 200);
}

TEST(MergeSimulatorTest, VariableRunLengths) {
  MergeConfig cfg = SmallConfig();
  cfg.run_lengths = {10, 20, 30, 40, 50};
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->blocks_merged, 150);
  EXPECT_EQ(result->disk_totals.blocks_transferred, 150u);
}

TEST(MergeSimulatorTest, GreedyAdmissionCompletesAndFillsCache) {
  MergeConfig cfg = MergeConfig::Paper(25, 5, 10, Strategy::kAllDisksOneRun,
                                       SyncMode::kUnsynchronized);
  cfg.cache_blocks = 400;  // Tight: forces partial admissions.
  cfg.check_invariants = true;
  cfg.blocks_per_run = 200;
  cfg.admission = AdmissionPolicy::kGreedy;
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->blocks_merged, 25 * 200);
  EXPECT_LT(result->SuccessRatio(), 1.0);
}

TEST(MergeSimulatorTest, AdmissionPoliciesEquivalentAtUnitDepth) {
  // The paper's Markov analysis compares the policies at unit fetches
  // (N = 1, one block per disk); there the two admission policies are
  // within noise of each other in this simulator (see the
  // bench_ablation_cache_policy discussion: with N > 1 greedy's partial
  // multi-block fetches amortize seeks and win on total time).
  MergeConfig cfg = MergeConfig::Paper(25, 5, 1, Strategy::kAllDisksOneRun,
                                       SyncMode::kUnsynchronized);
  cfg.cache_blocks = 80;
  auto conservative = RunTrials(cfg, 3);
  cfg.admission = AdmissionPolicy::kGreedy;
  auto greedy = RunTrials(cfg, 3);
  EXPECT_NEAR(conservative.MeanTotalSeconds(), greedy.MeanTotalSeconds(),
              conservative.MeanTotalSeconds() * 0.03);
}

TEST(MergeSimulatorTest, GreedyNeverSlowerAtDepth) {
  // With N > 1 and a tight cache, greedy admission outperforms the paper's
  // conservative policy on total time in this simulator (measured ablation).
  MergeConfig cfg = MergeConfig::Paper(25, 5, 10, Strategy::kAllDisksOneRun,
                                       SyncMode::kUnsynchronized);
  cfg.cache_blocks = 500;
  auto conservative = RunTrials(cfg, 3);
  cfg.admission = AdmissionPolicy::kGreedy;
  auto greedy = RunTrials(cfg, 3);
  EXPECT_LT(greedy.MeanTotalSeconds(), conservative.MeanTotalSeconds());
}

TEST(MergeSimulatorTest, VictimPoliciesAllComplete) {
  for (auto victim : {VictimPolicy::kRandom, VictimPolicy::kRoundRobin,
                      VictimPolicy::kFewestBuffered, VictimPolicy::kNearestHead}) {
    MergeConfig cfg = SmallConfig();
    cfg.strategy = Strategy::kAllDisksOneRun;
    cfg.victim = victim;
    auto result = SimulateMerge(cfg);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->blocks_merged, 200);
  }
}

TEST(MergeSimulatorTest, ClairvoyantRequiresTrace) {
  MergeConfig cfg = SmallConfig();
  cfg.strategy = Strategy::kAllDisksOneRun;
  cfg.victim = VictimPolicy::kClairvoyant;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.depletion = DepletionKind::kTrace;
  cfg.trace = workload::UniformDepletionTrace(cfg.num_runs, cfg.blocks_per_run, 3);
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(MergeSimulatorTest, ClairvoyantNeverLosesToRandomOnTraces) {
  // Aggarwal-Vitter prediction is an upper bound for victim choice: with a
  // tight cache it should beat (or tie) the random policy.
  MergeConfig cfg = MergeConfig::Paper(25, 5, 5, Strategy::kAllDisksOneRun,
                                       SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 400;
  cfg.cache_blocks = 300;  // Tight: victim choice matters.
  cfg.depletion = DepletionKind::kTrace;
  cfg.trace = workload::UniformDepletionTrace(cfg.num_runs, cfg.blocks_per_run, 11);
  auto random = SimulateMerge(cfg);
  cfg.victim = VictimPolicy::kClairvoyant;
  auto clairvoyant = SimulateMerge(cfg);
  ASSERT_TRUE(random.ok());
  ASSERT_TRUE(clairvoyant.ok());
  EXPECT_LE(clairvoyant->total_ms, random->total_ms * 1.02);
}

TEST(MergeSimulatorTest, DegenerateSizes) {
  // k=1: a single run, pure sequential reading.
  MergeConfig cfg = MergeConfig::Paper(1, 1, 1, Strategy::kDemandRunOnly,
                                       SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 10;
  cfg.check_invariants = true;
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->blocks_merged, 10);

  // One block per run.
  cfg = MergeConfig::Paper(8, 3, 1, Strategy::kAllDisksOneRun, SyncMode::kSynchronized);
  cfg.blocks_per_run = 1;
  cfg.check_invariants = true;
  result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->blocks_merged, 8);

  // N equal to the whole run.
  cfg = MergeConfig::Paper(4, 2, 10, Strategy::kDemandRunOnly, SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 10;
  cfg.check_invariants = true;
  result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->blocks_merged, 40);
  // Everything fits: after preload there are no further I/O operations.
  EXPECT_EQ(result->io_operations, 0u);
}

TEST(MergeSimulatorTest, StripedPlacementCompletesAndOverlaps) {
  MergeConfig cfg = MergeConfig::Paper(10, 5, 10, Strategy::kDemandRunOnly,
                                       SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 200;
  cfg.placement = disk::RunPlacement::kStriped;
  cfg.check_invariants = true;
  auto striped = SimulateMerge(cfg);
  ASSERT_TRUE(striped.ok()) << striped.status().ToString();
  EXPECT_EQ(striped->blocks_merged, 2000);

  cfg.placement = disk::RunPlacement::kRoundRobin;
  auto clustered = SimulateMerge(cfg);
  ASSERT_TRUE(clustered.ok());
  // A striped N-block fetch engages min(N, D) disks at once; clustered
  // demand-only tops out at the urn-game overlap.
  EXPECT_GT(striped->avg_concurrency, clustered->avg_concurrency * 1.5);
  EXPECT_LT(striped->total_ms, clustered->total_ms);
}

TEST(MergeSimulatorTest, StripedRejectsInterRun) {
  MergeConfig cfg = MergeConfig::Paper(10, 5, 10, Strategy::kAllDisksOneRun,
                                       SyncMode::kUnsynchronized);
  cfg.placement = disk::RunPlacement::kStriped;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(MergeSimulatorTest, StripedRejectsIndivisibleRuns) {
  MergeConfig cfg = MergeConfig::Paper(10, 3, 5, Strategy::kDemandRunOnly,
                                       SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 100;  // Not divisible by 3.
  cfg.placement = disk::RunPlacement::kStriped;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(MergeSimulatorTest, StripedUnitFetchMatchesClusteredBaseline) {
  // With N = 1 striping buys nothing (every fetch is one block on one
  // disk); time matches the clustered no-prefetch baseline.
  MergeConfig cfg = MergeConfig::Paper(10, 5, 1, Strategy::kDemandRunOnly,
                                       SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 200;
  cfg.placement = disk::RunPlacement::kStriped;
  auto striped = RunTrials(cfg, 3);
  cfg.placement = disk::RunPlacement::kRoundRobin;
  auto clustered = RunTrials(cfg, 3);
  EXPECT_NEAR(striped.MeanTotalSeconds(), clustered.MeanTotalSeconds(),
              clustered.MeanTotalSeconds() * 0.05);
}

TEST(MergeSimulatorTest, MoreDisksNeverSlower) {
  double prev = 1e18;
  for (int d : {1, 5, 25}) {
    MergeConfig cfg = MergeConfig::Paper(25, d, 10, Strategy::kDemandRunOnly,
                                         SyncMode::kUnsynchronized);
    auto result = SimulateMerge(cfg);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->total_ms, prev * 1.01);
    prev = result->total_ms;
  }
}

TEST(ExperimentTest, AggregatesTrials) {
  MergeConfig cfg = SmallConfig();
  auto result = RunTrials(cfg, 4);
  EXPECT_EQ(result.trials.size(), 4u);
  EXPECT_EQ(result.total_ms.count(), 4u);
  EXPECT_GT(result.MeanTotalSeconds(), 0.0);
  auto ci = result.TotalSecondsCi();
  EXPECT_TRUE(ci.Contains(result.MeanTotalSeconds()));
  EXPECT_FALSE(result.ToString().empty());
}

TEST(ExperimentTest, TrialsUseDistinctSeeds) {
  MergeConfig cfg = SmallConfig();
  auto result = RunTrials(cfg, 3);
  EXPECT_GT(result.total_ms.StdDev(), 0.0);
}

TEST(ExperimentTest, ParallelTrialsMatchSerialExactly) {
  MergeConfig cfg = SmallConfig();
  auto serial = RunTrials(cfg, 6);
  auto parallel = RunTrialsParallel(cfg, 6, 3);
  ASSERT_EQ(parallel.trials.size(), serial.trials.size());
  for (size_t t = 0; t < serial.trials.size(); ++t) {
    EXPECT_DOUBLE_EQ(parallel.trials[t].total_ms, serial.trials[t].total_ms) << t;
    EXPECT_EQ(parallel.trials[t].sim_events, serial.trials[t].sim_events) << t;
  }
  EXPECT_DOUBLE_EQ(parallel.total_ms.Mean(), serial.total_ms.Mean());
  EXPECT_DOUBLE_EQ(parallel.total_ms.Variance(), serial.total_ms.Variance());
}

TEST(ExperimentTest, ParallelHandlesMoreThreadsThanTrials) {
  MergeConfig cfg = SmallConfig();
  auto result = RunTrialsParallel(cfg, 2, 16);
  EXPECT_EQ(result.trials.size(), 2u);
}

}  // namespace
}  // namespace emsim::core

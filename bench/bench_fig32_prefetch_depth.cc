// Reproduces Figure 3.2 (a), (b), (c): total merge time vs prefetch depth N
// for intra-run ("Demand Run Only") and combined inter-run ("All Disks One
// Run") prefetching, with unsynchronized I/O and a cache ample enough to
// keep the inter-run success ratio at ~1 (the figure's operating point).

#include <cstddef>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/config.h"
#include "core/experiment.h"
#include "stats/series.h"
#include "workload/paper_configs.h"

namespace emsim {
namespace {

using core::MergeConfig;
using core::Strategy;
using core::SyncMode;

void AddCurve(stats::Figure& fig, const std::string& name, int k, int d,
              Strategy strategy) {
  stats::Series& series = fig.AddSeries(name);
  std::vector<int> depths = workload::Fig32DepthSweep();
  std::vector<MergeConfig> configs;
  configs.reserve(depths.size());
  for (int n : depths) {
    configs.push_back(MergeConfig::Paper(k, d, n, strategy, SyncMode::kUnsynchronized));
  }
  // One batched sweep per curve: the config x trial grid shares the worker
  // pool, so every thread stays busy even with small trial counts.
  std::vector<core::ExperimentResult> results = bench::RunSweep(configs);
  for (size_t i = 0; i < results.size(); ++i) {
    auto ci = results[i].TotalSecondsCi();
    series.Add(depths[i], ci.mean, ci.half_width);
  }
}

void PanelA() {
  stats::Figure fig("Figure 3.2(a): Fetching N Blocks (25 runs)", "N", "Total Time (s)");
  AddCurve(fig, "All Disks One Run (25 runs, 5 disks)", 25, 5, Strategy::kAllDisksOneRun);
  AddCurve(fig, "Demand Run Only (25 runs, 5 disks)", 25, 5, Strategy::kDemandRunOnly);
  AddCurve(fig, "Demand Run Only (25 runs, 1 disk)", 25, 1, Strategy::kDemandRunOnly);
  bench::EmitFigure(fig);
}

void PanelB() {
  stats::Figure fig("Figure 3.2(b): Fetching N Blocks (50 runs)", "N", "Total Time (s)");
  AddCurve(fig, "All Disks One Run (50 runs, 10 disks)", 50, 10, Strategy::kAllDisksOneRun);
  AddCurve(fig, "All Disks One Run (50 runs, 5 disks)", 50, 5, Strategy::kAllDisksOneRun);
  AddCurve(fig, "Demand Run Only (50 runs, 10 disks)", 50, 10, Strategy::kDemandRunOnly);
  AddCurve(fig, "Demand Run Only (50 runs, 1 disk)", 50, 1, Strategy::kDemandRunOnly);
  bench::EmitFigure(fig);
}

void PanelC() {
  stats::Figure fig("Figure 3.2(c): Expanded View (5 disks, 25 and 50 runs)", "N",
                    "Total Time (s)");
  AddCurve(fig, "All Disks One Run (25 runs, 5 disks)", 25, 5, Strategy::kAllDisksOneRun);
  AddCurve(fig, "All Disks One Run (50 runs, 5 disks)", 50, 5, Strategy::kAllDisksOneRun);
  AddCurve(fig, "Demand Run Only (25 runs, 5 disks)", 25, 5, Strategy::kDemandRunOnly);
  AddCurve(fig, "Demand Run Only (50 runs, 5 disks)", 50, 5, Strategy::kDemandRunOnly);
  bench::EmitFigure(fig);
}

}  // namespace
}  // namespace emsim

int main() {
  emsim::bench::Banner(
      "Figure 3.2",
      "Total time vs prefetch depth N; unsynchronized; ample cache.\n"
      "Expected shape: all curves fall with N; 1-disk Demand Run Only is\n"
      "highest; All Disks One Run is lowest and approaches B*T/D; curves\n"
      "with more disks dominate those with fewer.");
  emsim::PanelA();
  emsim::PanelB();
  emsim::PanelC();
  emsim::bench::WriteJsonArtifact("fig32_prefetch_depth");
  return 0;
}

#ifndef EMSIM_SWEEP_DISPATCHER_H_
#define EMSIM_SWEEP_DISPATCHER_H_

#include <functional>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "util/status.h"

namespace emsim::sweep {

/// Multi-process shard dispatcher: hands shard indices to a pool of worker
/// subprocesses with work-stealing handoff (a finished worker immediately
/// claims the next pending shard), per-shard wall-clock deadlines, and
/// straggler resubmission with exponential backoff — the same
/// fault::RetryPolicy shape the simulated I/O retry driver uses, applied to
/// real processes. Shard artifacts are deterministic per shard index, so a
/// resubmitted attempt reproduces exactly what the killed straggler would
/// have written and the merged result is unaffected by retries.
struct DispatcherOptions {
  int num_shards = 1;
  /// Concurrent worker subprocesses; 0 = min(num_shards, hardware threads).
  int max_workers = 0;
  /// retry.timeout_ms: per-shard wall-clock deadline before the attempt is
  /// killed and resubmitted (0 = no deadline). retry.max_retries:
  /// resubmissions allowed per shard. retry.backoff_base_ms/multiplier:
  /// real-time backoff before a resubmission.
  fault::RetryPolicy retry;
  /// Test/CI chaos hook: SIGKILL the first attempt of this shard right
  /// after it spawns, to prove the resubmission path end to end (-1 = off).
  int chaos_kill_shard = -1;
  /// Progress lines ("shard 3/7 attempt 2: exit 0"); null = silent.
  std::function<void(const std::string&)> log;
};

/// Per-shard dispatch outcome.
struct ShardDispatch {
  int shard = 0;
  int attempts = 0;
  bool ok = false;
  std::string artifact_path;  ///< Written by the successful attempt.
  std::string error;          ///< Why the shard ultimately failed.
};

/// Builds the worker argv for one shard attempt; `out_path` is where the
/// worker must write its artifact (the dispatcher picks an attempt-unique
/// path so a killed attempt's partial file cannot shadow a good one).
using ShardCommandFn =
    std::function<std::vector<std::string>(int shard, const std::string& out_path)>;

/// Runs all shards to completion (or permanent failure). Returns one entry
/// per shard, in shard order. The call fails only on infrastructure errors
/// (spawn failure, shard exhausting its retries); per-task simulation
/// failures live inside the artifacts and are surfaced by the merger.
Result<std::vector<ShardDispatch>> RunShardedSweep(const DispatcherOptions& options,
                                                   const std::string& shard_dir,
                                                   const ShardCommandFn& command);

}  // namespace emsim::sweep

#endif  // EMSIM_SWEEP_DISPATCHER_H_

#ifndef EMSIM_ANALYSIS_URN_GAME_H_
#define EMSIM_ANALYSIS_URN_GAME_H_

#include <vector>

namespace emsim::analysis {

/// The paper's urn game modelling unsynchronized intra-run concurrency:
/// balls (I/O requests) are thrown into D urns (disks) uniformly at random;
/// a round ends when a ball lands in an occupied urn. The round length —
/// the number of distinctly-hit urns — is the number of disks that operate
/// concurrently. This is the birthday-problem stopping time.
class UrnGame {
 public:
  explicit UrnGame(int num_disks);

  int num_disks() const { return d_; }

  /// Q_j = P(round length >= j) = prod_{i=1}^{j-1} (D - i)/D, for j in
  /// [1, D]; Q_j = 0 beyond D.
  double SurvivalQ(int j) const;

  /// P_j = P(round length == j) = (j/D) Q_j.
  double LengthPmf(int j) const;

  /// E[length] = sum_j Q_j — the paper's average I/O parallelism
  /// (2.51, 3.66, 5.29 for D = 5, 10, 20).
  double ExpectedLength() const;

  /// The paper's asymptotic form sqrt(pi D / 2) - 1/3.
  double AsymptoticLength() const;

  /// Full PMF, index j-1 for lengths 1..D.
  std::vector<double> PmfVector() const;

 private:
  int d_;
};

/// Asymptotic unsynchronized intra-run total time: the synchronized total
/// divided by the expected urn-round length (the paper's speedup model).
double UnsyncSpeedupFactor(int num_disks);

}  // namespace emsim::analysis

#endif  // EMSIM_ANALYSIS_URN_GAME_H_

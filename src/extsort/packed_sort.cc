#include "extsort/packed_sort.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "extsort/loser_tree.h"
#include "extsort/tag_sort.h"
#include "util/check.h"

namespace emsim::extsort {

namespace {

/// Sequential reader over one packed run with block buffering.
class PackedRunCursor {
 public:
  PackedRunCursor(BlockDevice* device, size_t record_bytes, int64_t start_block,
                  uint64_t num_records, int buffer_blocks)
      : device_(device),
        record_bytes_(record_bytes),
        records_per_block_(device->block_bytes() / record_bytes),
        start_block_(start_block),
        num_records_(num_records),
        buffer_blocks_(buffer_blocks),
        scratch_(device->block_bytes()) {}

  /// Returns a pointer to the next record's bytes, or nullptr at the end.
  /// The pointer is valid until the next call.
  Result<const uint8_t*> Next() {
    if (returned_ >= num_records_) {
      return Status::NotFound("run exhausted");
    }
    if (buffer_pos_ >= buffer_.size()) {
      EMSIM_RETURN_IF_ERROR(Refill());
    }
    const uint8_t* record = buffer_.data() + buffer_pos_;
    buffer_pos_ += record_bytes_;
    ++returned_;
    return record;
  }

  bool Exhausted() const { return returned_ >= num_records_; }

 private:
  Status Refill() {
    buffer_.clear();
    buffer_pos_ = 0;
    int64_t total_blocks =
        static_cast<int64_t>((num_records_ + records_per_block_ - 1) / records_per_block_);
    int64_t to_read = std::min<int64_t>(buffer_blocks_, total_blocks - next_block_);
    EMSIM_CHECK(to_read >= 1);
    for (int64_t b = 0; b < to_read; ++b) {
      EMSIM_RETURN_IF_ERROR(device_->Read(start_block_ + next_block_, scratch_));
      uint64_t first = static_cast<uint64_t>(next_block_) * records_per_block_;
      uint64_t n = std::min<uint64_t>(records_per_block_, num_records_ - first);
      buffer_.insert(buffer_.end(), scratch_.begin(),
                     scratch_.begin() + static_cast<std::ptrdiff_t>(n * record_bytes_));
      ++next_block_;
    }
    return Status::OK();
  }

  BlockDevice* device_;
  size_t record_bytes_;
  size_t records_per_block_;
  int64_t start_block_;
  uint64_t num_records_;
  int buffer_blocks_;
  int64_t next_block_ = 0;
  uint64_t returned_ = 0;
  size_t buffer_pos_ = 0;
  std::vector<uint8_t> buffer_;
  std::vector<uint8_t> scratch_;
};

uint64_t KeyOf(const uint8_t* record) {
  uint64_t key = 0;
  std::memcpy(&key, record, sizeof(key));
  return key;
}

}  // namespace

Result<PackedSortStats> PackedExternalSorter::Sort(BlockDevice* input, uint64_t count,
                                                   BlockDevice* scratch,
                                                   BlockDevice* output) {
  if (count == 0) {
    return Status::InvalidArgument("nothing to sort");
  }
  const size_t record_bytes = options_.record_bytes;
  PackedRecordFile in(input, record_bytes);
  const size_t records_per_block = in.records_per_block();

  PackedSortStats stats;
  stats.records = count;

  // Phase 1: load-sort chunks into packed runs on scratch.
  struct PackedRun {
    int64_t start_block;
    uint64_t records;
    int64_t blocks;
  };
  std::vector<PackedRun> runs;
  std::vector<uint8_t> chunk;
  std::vector<uint8_t> block(input->block_bytes());
  int64_t next_run_block = 0;
  uint64_t consumed = 0;
  int64_t input_block = 0;
  std::vector<uint8_t> carry;  // Records read but not yet chunked.
  while (consumed < count) {
    uint64_t want = std::min<uint64_t>(options_.memory_records, count - consumed);
    chunk.clear();
    chunk.reserve(want * record_bytes);
    chunk.insert(chunk.end(), carry.begin(), carry.end());
    carry.clear();
    while (chunk.size() < want * record_bytes) {
      EMSIM_RETURN_IF_ERROR(input->Read(input_block, block));
      uint64_t first = static_cast<uint64_t>(input_block) * records_per_block;
      uint64_t n = std::min<uint64_t>(records_per_block, count - first);
      ++input_block;
      chunk.insert(chunk.end(), block.begin(),
                   block.begin() + static_cast<std::ptrdiff_t>(n * record_bytes));
    }
    if (chunk.size() > want * record_bytes) {
      carry.assign(chunk.begin() + static_cast<std::ptrdiff_t>(want * record_bytes),
                   chunk.end());
      chunk.resize(want * record_bytes);
    }

    // Sort the chunk by key via an index permutation (records stay put).
    std::vector<uint32_t> order(want);
    std::iota(order.begin(), order.end(), 0U);
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return KeyOf(chunk.data() + a * record_bytes) < KeyOf(chunk.data() + b * record_bytes);
    });

    // Write the run, packed.
    PackedRun run;
    run.start_block = next_run_block;
    run.records = want;
    run.blocks = static_cast<int64_t>((want + records_per_block - 1) / records_per_block);
    std::vector<uint8_t> out_block(scratch->block_bytes(), 0);
    size_t filled = 0;
    int64_t blocks_written = 0;
    for (uint32_t idx : order) {
      std::memcpy(out_block.data() + filled, chunk.data() + idx * record_bytes,
                  record_bytes);
      filled += record_bytes;
      if (filled + record_bytes > out_block.size()) {
        EMSIM_RETURN_IF_ERROR(scratch->Write(next_run_block + blocks_written, out_block));
        ++blocks_written;
        std::fill(out_block.begin(), out_block.end(), uint8_t{0});
        filled = 0;
      }
    }
    if (filled > 0) {
      EMSIM_RETURN_IF_ERROR(scratch->Write(next_run_block + blocks_written, out_block));
      ++blocks_written;
    }
    EMSIM_CHECK_EQ(blocks_written, run.blocks);
    next_run_block += run.blocks;
    stats.run_blocks += run.blocks;
    runs.push_back(run);
    consumed += want;
  }
  stats.runs = runs.size();

  // Phase 2: k-way merge with a loser tree over the run cursors.
  std::vector<PackedRunCursor> cursors;
  cursors.reserve(runs.size());
  for (const PackedRun& run : runs) {
    cursors.emplace_back(scratch, record_bytes, run.start_block, run.records,
                         options_.reader_buffer_blocks);
  }
  int k = static_cast<int>(cursors.size());
  LoserTree<uint64_t> tree(k);
  // The tree holds keys; full records are copied at emit time.
  std::vector<std::vector<uint8_t>> heads(static_cast<size_t>(k),
                                          std::vector<uint8_t>(record_bytes));
  for (int s = 0; s < k; ++s) {
    auto rec = cursors[static_cast<size_t>(s)].Next();
    if (rec.ok()) {
      std::memcpy(heads[static_cast<size_t>(s)].data(), *rec, record_bytes);
      tree.SetInitial(s, KeyOf(heads[static_cast<size_t>(s)].data()));
    } else {
      tree.MarkExhausted(s);
    }
  }
  tree.Build();

  std::vector<uint8_t> out_block(output->block_bytes(), 0);
  size_t filled = 0;
  int64_t out_blocks = 0;
  uint64_t emitted = 0;
  uint64_t previous_key = 0;
  while (!tree.Empty()) {
    int s = tree.WinnerSource();
    const std::vector<uint8_t>& head = heads[static_cast<size_t>(s)];
    uint64_t key = KeyOf(head.data());
    if (emitted > 0 && key < previous_key) {
      return Status::Corruption("packed merge went backwards");
    }
    previous_key = key;
    std::memcpy(out_block.data() + filled, head.data(), record_bytes);
    filled += record_bytes;
    ++emitted;
    if (filled + record_bytes > out_block.size()) {
      EMSIM_RETURN_IF_ERROR(output->Write(out_blocks++, out_block));
      std::fill(out_block.begin(), out_block.end(), uint8_t{0});
      filled = 0;
    }
    auto next = cursors[static_cast<size_t>(s)].Next();
    if (next.ok()) {
      std::memcpy(heads[static_cast<size_t>(s)].data(), *next, record_bytes);
      tree.ReplaceWinner(KeyOf(heads[static_cast<size_t>(s)].data()));
    } else {
      tree.ExhaustWinner();
    }
  }
  if (filled > 0) {
    EMSIM_RETURN_IF_ERROR(output->Write(out_blocks++, out_block));
  }
  if (emitted != count) {
    return Status::Internal("packed merge lost records");
  }
  stats.output_blocks = out_blocks;
  return stats;
}

}  // namespace emsim::extsort

// Property and stress tests pinning both calendar backends (indexed 4-ary
// heap and Brown-1988 calendar queue) to a reference model
// (std::priority_queue over (time, seq)), plus burst-resume equivalence, the
// seq-wrap renormalization, the frame pool's reuse guarantee and the O(1)
// live-process bookkeeping. These guard the PR-critical invariant that every
// calendar backend preserves exact (time, seq) FIFO ordering under every
// driver (Run, RunUntil, Step), under reentrant scheduling from callbacks,
// and under adversarial time distributions (all-equal timestamps, sparse
// exponential spreads, resize churn). Labeled `unit;thread` so the sanitizer
// CI jobs run them under ASan and TSan builds as well.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "sim/calendar.h"
#include "sim/event.h"
#include "sim/frame_pool.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace emsim::sim {
namespace {

// ---------------------------------------------------------------------------
// Reference-model stress test.
//
// A static event tree is generated up front: root events at random times,
// each event spawning 0-2 children at `parent_time + delta` when executed
// (reentrant scheduling — the sim schedules children from inside callbacks).
// The same tree is replayed against a std::priority_queue reference that
// implements the documented contract directly: earliest time first, FIFO by
// insertion sequence on ties. The execution orders must match exactly.
// ---------------------------------------------------------------------------

struct EventTree {
  std::vector<double> time_of;
  std::vector<std::vector<std::pair<int, double>>> kids;  // (child id, delta)
  int num_ids = 0;
  int num_roots = 0;
};

EventTree MakeTree(uint64_t seed, int roots, int max_ids) {
  EventTree tree;
  tree.num_roots = roots;
  tree.time_of.resize(static_cast<size_t>(max_ids), 0.0);
  tree.kids.resize(static_cast<size_t>(max_ids));
  Rng rng(seed);
  int next_id = roots;
  for (int i = 0; i < roots; ++i) {
    // Coarse grid so distinct events frequently collide on the same time and
    // exercise the FIFO tie-break, not just the time ordering.
    tree.time_of[static_cast<size_t>(i)] = static_cast<double>(rng.UniformInt(40));
  }
  for (int id = 0; id < next_id; ++id) {
    uint64_t n_children = rng.UniformInt(3);  // 0, 1, or 2.
    for (uint64_t c = 0; c < n_children && next_id < max_ids; ++c) {
      double delta = static_cast<double>(rng.UniformInt(10));
      tree.kids[static_cast<size_t>(id)].emplace_back(next_id, delta);
      tree.time_of[static_cast<size_t>(next_id)] =
          tree.time_of[static_cast<size_t>(id)] + delta;
      ++next_id;
    }
  }
  tree.num_ids = next_id;
  return tree;
}

/// Executes the tree on the reference model: a binary heap over
/// (time, insertion seq) with no knowledge of the production calendar.
std::vector<int> ReferenceOrder(const EventTree& tree) {
  struct Entry {
    double time;
    uint64_t seq;
    int id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> queue;
  uint64_t seq = 0;
  for (int i = 0; i < tree.num_roots; ++i) {
    queue.push(Entry{tree.time_of[static_cast<size_t>(i)], seq++, i});
  }
  std::vector<int> order;
  while (!queue.empty()) {
    Entry top = queue.top();
    queue.pop();
    order.push_back(top.id);
    for (const auto& [child, delta] : tree.kids[static_cast<size_t>(top.id)]) {
      queue.push(Entry{tree.time_of[static_cast<size_t>(child)], seq++, child});
    }
  }
  return order;
}

/// Schedules the tree's roots into `sim`; executed ids append to `log` and
/// reentrantly schedule their children.
class TreeDriver {
 public:
  TreeDriver(Simulation* sim, const EventTree* tree) : sim_(sim), tree_(tree) {}

  void ScheduleRoots() {
    for (int i = 0; i < tree_->num_roots; ++i) {
      Schedule(i);
    }
  }

  const std::vector<int>& log() const { return log_; }

 private:
  void Schedule(int id) {
    sim_->ScheduleCallback(tree_->time_of[static_cast<size_t>(id)],
                           [this, id] { Execute(id); });
  }

  void Execute(int id) {
    log_.push_back(id);
    for (const auto& [child, delta] : tree_->kids[static_cast<size_t>(id)]) {
      Schedule(child);
    }
  }

  Simulation* sim_;
  const EventTree* tree_;
  std::vector<int> log_;
};

/// Every ordering test below runs once per calendar backend: the (time, seq)
/// contract is backend-independent by design, and this suite is what pins it.
class CalendarContractTest : public ::testing::TestWithParam<CalendarBackend> {};

INSTANTIATE_TEST_SUITE_P(Backends, CalendarContractTest,
                         ::testing::Values(CalendarBackend::kHeap,
                                           CalendarBackend::kCalendarQueue),
                         [](const ::testing::TestParamInfo<CalendarBackend>& info) {
                           return std::string(CalendarBackendName(info.param));
                         });

TEST_P(CalendarContractTest, RunMatchesReferenceModel) {
  for (uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    EventTree tree = MakeTree(seed, /*roots=*/200, /*max_ids=*/4000);
    std::vector<int> expected = ReferenceOrder(tree);

    Simulation sim(GetParam());
    TreeDriver driver(&sim, &tree);
    driver.ScheduleRoots();
    sim.Run();

    EXPECT_EQ(driver.log(), expected);
    EXPECT_EQ(sim.events_processed(), static_cast<uint64_t>(tree.num_ids));
    EXPECT_EQ(sim.CalendarDepth(), 0u);
  }
}

TEST_P(CalendarContractTest, InterleavedStepAndRunUntilMatchesReferenceModel) {
  EventTree tree = MakeTree(/*seed=*/99, /*roots=*/150, /*max_ids=*/3000);
  std::vector<int> expected = ReferenceOrder(tree);

  Simulation sim(GetParam());
  TreeDriver driver(&sim, &tree);
  driver.ScheduleRoots();
  // Drain through every driver the kernel offers: single steps, bounded
  // runs, then the terminal Run. Execution order must be invariant.
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(sim.Step());
  }
  sim.RunUntil(sim.Now() + 10.0);
  sim.RunUntil(sim.Now());  // Degenerate deadline: only same-time events.
  sim.Run();

  EXPECT_EQ(driver.log(), expected);
  EXPECT_EQ(sim.events_processed(), static_cast<uint64_t>(tree.num_ids));
}

TEST_P(CalendarContractTest, FifoTieBreakAcrossInterleavedTimes) {
  Simulation sim(GetParam());
  std::vector<int> log;
  // Interleave registrations across two times; within a time, execution must
  // follow registration order exactly.
  for (int i = 0; i < 64; ++i) {
    double at = (i % 2 == 0) ? 5.0 : 3.0;
    sim.ScheduleCallback(at, [&log, i] { log.push_back(i); });
  }
  sim.Run();
  ASSERT_EQ(log.size(), 64u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(log[static_cast<size_t>(i)], 2 * i + 1) << "time-3 group order";
    EXPECT_EQ(log[static_cast<size_t>(32 + i)], 2 * i) << "time-5 group order";
  }
}

// ---------------------------------------------------------------------------
// Adversarial time distributions. Each targets a calendar-queue failure mode
// (bucket collapse, sparse buckets, resize churn) but runs on both backends:
// the expected order comes from the contract, not from either structure.
// ---------------------------------------------------------------------------

TEST_P(CalendarContractTest, AllEqualTimestampsPreserveFifo) {
  // Every event on one tick: the calendar queue degenerates to a single
  // sorted bucket (width adaptation cannot separate equal times), and the
  // heap's comparator decides purely on seq. Reentrant same-time scheduling
  // must interleave exactly as the reference does.
  Simulation sim(GetParam());
  std::vector<int> log;
  constexpr int kFirstWave = 500;
  for (int i = 0; i < kFirstWave; ++i) {
    sim.ScheduleCallback(7.0, [&log, &sim, i] {
      log.push_back(i);
      if (i % 3 == 0) {
        // A same-tick child: must run after everything already registered.
        sim.ScheduleCallback(7.0, [&log, i] { log.push_back(kFirstWave + i); });
      }
    });
  }
  sim.Run();
  std::vector<int> expected;
  for (int i = 0; i < kFirstWave; ++i) {
    expected.push_back(i);
  }
  for (int i = 0; i < kFirstWave; i += 3) {
    expected.push_back(kFirstWave + i);
  }
  EXPECT_EQ(log, expected);
  EXPECT_EQ(sim.Now(), 7.0);
}

TEST_P(CalendarContractTest, ExponentiallySpreadTimestampsMatchReference) {
  // Times spanning ~10 decades leave nearly every calendar-queue bucket
  // empty and force its direct-search fallback (a whole "year" scan finds
  // nothing due). Expected order: stable sort by time (seq breaks ties by
  // registration order).
  Rng rng(2024);
  std::vector<double> times;
  for (int i = 0; i < 3000; ++i) {
    double t = rng.Exponential(1.0) * std::pow(10.0, static_cast<double>(rng.UniformInt(10)));
    times.push_back(t);
  }
  std::vector<int> expected(times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    expected[i] = static_cast<int>(i);
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [&times](int a, int b) {
                     return times[static_cast<size_t>(a)] < times[static_cast<size_t>(b)];
                   });

  Simulation sim(GetParam());
  std::vector<int> log;
  for (size_t i = 0; i < times.size(); ++i) {
    sim.ScheduleCallback(times[i], [&log, i] { log.push_back(static_cast<int>(i)); });
  }
  sim.Run();
  EXPECT_EQ(log, expected);
}

TEST_P(CalendarContractTest, PopulationChurnWavesMatchReference) {
  // Sawtooth population (fill to ~2000, drain to ~50, repeat) drives the
  // calendar queue through repeated grow/shrink resizes while events keep
  // executing; a tree replay per wave cross-checks the full order.
  Simulation sim(GetParam());
  Rng rng(31337);
  std::vector<double> pending;  // Times scheduled but not yet executed.
  std::vector<std::pair<double, int>> executed;
  int next_id = 0;
  auto schedule = [&](double at, int id) {
    sim.ScheduleCallback(at, [&executed, at, id] { executed.emplace_back(at, id); });
    pending.push_back(at);
  };
  for (int wave = 0; wave < 6; ++wave) {
    for (int i = 0; i < 2000; ++i) {
      double at = sim.Now() + static_cast<double>(rng.UniformInt(500)) * 0.25;
      schedule(at, next_id++);
    }
    // Drain most of the population, leaving a deadline-ordered remainder.
    std::sort(pending.begin(), pending.end());
    double cutoff = pending[pending.size() - 50];
    pending.erase(pending.begin(), pending.end() - 50);
    sim.RunUntil(cutoff);
  }
  sim.Run();
  // The contract gives the expected order directly: sort executions by
  // (time, registration id) — ids were assigned in scheduling order.
  std::vector<std::pair<double, int>> expected = executed;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(executed, expected);
  EXPECT_EQ(sim.events_processed(), static_cast<uint64_t>(next_id));
}

// ---------------------------------------------------------------------------
// Batched same-timestamp resume. Ground truth comes from the kernel itself:
// with the calendar-depth timeline attached, ScheduleHandleBurst falls back
// to per-handle scheduling, so running one scenario with and without metrics
// must produce identical logs, event counts and clocks.
// ---------------------------------------------------------------------------

Process BurstWaiter(Simulation& sim, Event& ready, std::vector<int>& log, int id) {
  co_await ready.Wait();
  log.push_back(id);
  // Same-tick follow-up work: must run after every burst member resumed.
  sim.ScheduleCallback(sim.Now(), [&log, id] { log.push_back(1000 + id); });
  co_await Delay(0.0);  // Lone-runner bait: time must not advance mid-burst.
  log.push_back(2000 + id);
}

Process BurstSetter(Event& ready) {
  co_await Delay(5.0);
  ready.Set();
}

struct BurstRunResult {
  std::vector<int> log;
  uint64_t events = 0;
  double now = 0.0;
};

BurstRunResult RunBurstScenario(CalendarBackend backend, bool attach_metrics) {
  Simulation sim(backend);
  obs::MetricsRegistry metrics(true);
  if (attach_metrics) {
    sim.AttachMetrics(&metrics);
  }
  BurstRunResult result;
  Event ready(&sim);
  for (int id = 0; id < 16; ++id) {
    sim.Spawn(BurstWaiter(sim, ready, result.log, id));
  }
  sim.Spawn(BurstSetter(ready));
  sim.Run();
  result.events = sim.events_processed();
  result.now = sim.Now();
  return result;
}

TEST_P(CalendarContractTest, EventBurstResumesWaitersInFifoOrder) {
  BurstRunResult burst = RunBurstScenario(GetParam(), /*attach_metrics=*/false);
  ASSERT_EQ(burst.log.size(), 48u);
  // All 16 members resume first (FIFO); then their same-tick follow-ups in
  // seq order — each member registered its callback then its Delay(0)
  // continuation, so the tail interleaves (1000+id, 2000+id) pairs.
  for (int id = 0; id < 16; ++id) {
    EXPECT_EQ(burst.log[static_cast<size_t>(id)], id) << "waiter order";
    EXPECT_EQ(burst.log[static_cast<size_t>(16 + 2 * id)], 1000 + id) << "follow-up order";
    EXPECT_EQ(burst.log[static_cast<size_t>(17 + 2 * id)], 2000 + id) << "post-delay order";
  }
  EXPECT_EQ(burst.now, 5.0);
}

TEST_P(CalendarContractTest, BurstPathMatchesUnbatchedFallbackExactly) {
  BurstRunResult burst = RunBurstScenario(GetParam(), /*attach_metrics=*/false);
  BurstRunResult unbatched = RunBurstScenario(GetParam(), /*attach_metrics=*/true);
  EXPECT_EQ(burst.log, unbatched.log);
  EXPECT_EQ(burst.events, unbatched.events);
  EXPECT_EQ(burst.now, unbatched.now);
}

Process SignalHopper(Signal& pulse, int& rounds, std::vector<int>& log, int id) {
  while (rounds > 0) {
    co_await pulse.Wait();
    log.push_back(id);
  }
}

Process SignalDriver(Signal& pulse, int& rounds) {
  while (rounds > 0) {
    co_await Delay(1.0);
    --rounds;
    pulse.Fire();
  }
}

TEST_P(CalendarContractTest, RepeatedSignalBurstsRecycleBurstSlots) {
  Simulation sim(GetParam());
  Signal pulse(&sim);
  int rounds = 50;
  std::vector<int> log;
  for (int id = 0; id < 8; ++id) {
    sim.Spawn(SignalHopper(pulse, rounds, log, id));
  }
  sim.Spawn(SignalDriver(pulse, rounds));
  sim.Run();
  // 50 pulses x 8 waiters, FIFO within each pulse. (The final pulse finds
  // rounds == 0, so every waiter still runs exactly 50 times.)
  ASSERT_EQ(log.size(), 400u);
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i], static_cast<int>(i % 8));
  }
  EXPECT_EQ(sim.live_processes(), 0);
}

// ---------------------------------------------------------------------------
// 32-bit seq wrap: renormalization keeps the FIFO contract across the wrap.
// ---------------------------------------------------------------------------

TEST_P(CalendarContractTest, SeqWrapRenormalizationPreservesFifo) {
  Simulation sim(GetParam());
  std::vector<int> log;
  // A few entries with ordinary seqs, then force the counter to the edge so
  // the remaining registrations straddle the wrap mid-scheduling.
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleCallback(20.0 + i, [&log, i] { log.push_back(i); });
  }
  sim.SetNextSeqForTest(UINT32_MAX - 2);
  for (int i = 5; i < 30; ++i) {
    sim.ScheduleCallback(10.0, [&log, i] { log.push_back(i); });
  }
  sim.Run();
  // Expected: the same-time block (5..29) in registration order — across the
  // renormalization — then the earlier-registered but later-timed 0..4.
  ASSERT_EQ(log.size(), 30u);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(log[static_cast<size_t>(i)], 5 + i);
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(log[static_cast<size_t>(25 + i)], i);
  }
}

Process WakeRecorder(Simulation& sim, std::vector<double>& wakes) {
  for (int i = 0; i < 8; ++i) {
    co_await Delay(1.5);
    wakes.push_back(sim.Now());
  }
}

TEST_P(CalendarContractTest, SeqWrapDuringLoneRunnerAdvance) {
  Simulation sim(GetParam());
  sim.SetNextSeqForTest(UINT32_MAX - 1);
  std::vector<double> wakes;
  sim.Spawn(WakeRecorder(sim, wakes));
  sim.Run();
  ASSERT_EQ(wakes.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(wakes[static_cast<size_t>(i)], 1.5 * (i + 1));
  }
}

// ---------------------------------------------------------------------------
// CalendarQueue direct tests: randomized push/pop against the reference heap
// under the same adversarial distributions, with resize churn verified via
// the bucket-count introspection.
// ---------------------------------------------------------------------------

struct RefLater {
  bool operator()(const CalEntry& a, const CalEntry& b) const { return EarlierThan(b, a); }
};
using ReferenceQueue = std::priority_queue<CalEntry, std::vector<CalEntry>, RefLater>;

void FuzzAgainstReference(uint64_t seed, int ops, double (*next_time)(Rng&, double)) {
  Rng rng(seed);
  CalendarQueue cq;
  ReferenceQueue ref;
  uint32_t seq = 0;
  double now = 0.0;
  for (int op = 0; op < ops; ++op) {
    // Bias toward pushes while small, pops while large, with random runs of
    // each so the population swings through resize thresholds repeatedly.
    const uint64_t push_bias = cq.size() < 512 ? 60 : 40;
    bool push = cq.empty() || rng.UniformInt(100) < push_bias;
    if (push) {
      CalEntry entry{next_time(rng, now), seq, seq};
      ++seq;
      cq.Push(entry);
      ref.push(entry);
    } else {
      ASSERT_EQ(cq.PeekMin().seq, ref.top().seq) << "op " << op;
      CalEntry popped = cq.PopMin();
      EXPECT_EQ(popped.time, ref.top().time) << "op " << op;
      EXPECT_EQ(popped.seq, ref.top().seq) << "op " << op;
      now = popped.time;  // Simulation clock: future pushes are >= now.
      ref.pop();
    }
    ASSERT_EQ(cq.size(), ref.size());
  }
  while (!cq.empty()) {
    CalEntry popped = cq.PopMin();
    EXPECT_EQ(popped.seq, ref.top().seq);
    ref.pop();
  }
}

TEST(CalendarQueueTest, UniformTimesMatchReference) {
  FuzzAgainstReference(17, 20000, [](Rng& rng, double now) {
    return now + static_cast<double>(rng.UniformInt(1000)) * 0.125;
  });
}

TEST(CalendarQueueTest, AllEqualTimesMatchReference) {
  // Bucket collapse: every entry maps to one bucket; order is pure seq.
  FuzzAgainstReference(23, 8000, [](Rng&, double now) { return now; });
}

TEST(CalendarQueueTest, ExponentialSpreadMatchesReference) {
  // Sparse buckets: successive times jump decades, exercising the
  // direct-search fallback and cursor jumps.
  FuzzAgainstReference(29, 8000, [](Rng& rng, double now) {
    return now + rng.Exponential(1.0) * std::pow(10.0, static_cast<double>(rng.UniformInt(8)));
  });
}

TEST(CalendarQueueTest, ResizeChurnGrowsAndShrinksBuckets) {
  CalendarQueue cq;
  Rng rng(7);
  uint32_t seq = 0;
  size_t max_buckets = cq.NumBuckets();
  // Fill far past the grow threshold...
  for (int i = 0; i < 4096; ++i) {
    cq.Push(CalEntry{static_cast<double>(rng.UniformInt(100000)) * 0.01, seq, seq});
    ++seq;
    max_buckets = std::max(max_buckets, cq.NumBuckets());
  }
  EXPECT_GT(max_buckets, 4u) << "population 4096 must trigger grow resizes";
  // ...then drain to trigger the shrink path, checking order en route.
  CalEntry prev = cq.PopMin();
  size_t min_buckets = cq.NumBuckets();
  while (!cq.empty()) {
    CalEntry entry = cq.PopMin();
    ASSERT_TRUE(EarlierThan(prev, entry));
    prev = entry;
    min_buckets = std::min(min_buckets, cq.NumBuckets());
  }
  EXPECT_LT(min_buckets, max_buckets) << "drain must trigger shrink resizes";
  EXPECT_GT(cq.BucketWidth(), 0.0);
}

// ---------------------------------------------------------------------------
// Callback-cell pool behavior.
// ---------------------------------------------------------------------------

TEST(CalendarTest, CallbackSlotsAreReusedAcrossWaves) {
  Simulation sim;
  int64_t hits = 0;
  for (int wave = 0; wave < 6; ++wave) {
    for (int i = 0; i < 50; ++i) {
      sim.ScheduleCallback(sim.Now() + 1.0 + i, [&hits] { ++hits; });
    }
    sim.Run();
    // The pool grows to the high-water mark of concurrently pending
    // callbacks on the first wave and never after.
    EXPECT_EQ(sim.CallbackPoolSize(), 50u) << "wave " << wave;
  }
  EXPECT_EQ(hits, 6 * 50);
}

TEST(CalendarTest, HandleSlotsAreReusedAcrossWaves) {
  Simulation sim;
  for (int wave = 0; wave < 6; ++wave) {
    for (int i = 0; i < 40; ++i) {
      sim.Spawn([](double delay) -> Process { co_await Delay(delay); }(1.0 + i));
    }
    sim.Run();
    // Same recycling contract as callback cells: the handle pool grows to
    // the peak number of simultaneously parked coroutines, then stabilizes.
    EXPECT_EQ(sim.HandlePoolSize(), 40u) << "wave " << wave;
  }
  EXPECT_EQ(sim.live_processes(), 0);
}

TEST(CalendarTest, HeapBoxedCallablesExecuteAndDestruct) {
  auto token = std::make_shared<int>(7);
  {
    Simulation sim;
    int sum = 0;
    // Large trivially-copyable capture: too big for the inline cell, heap-boxed.
    std::array<int, 64> big{};
    big[0] = 1;
    big[63] = 2;
    sim.ScheduleCallback(1.0, [big, &sum] { sum += big[0] + big[63]; });
    // Non-trivially-copyable capture (shared_ptr): also heap-boxed.
    sim.ScheduleCallback(2.0, [token, &sum] { sum += *token; });
    sim.Run();
    EXPECT_EQ(sum, 10);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(CalendarTest, PendingCallbacksAreDestroyedWithTheSimulation) {
  auto token = std::make_shared<int>(1);
  {
    Simulation sim;
    sim.ScheduleCallback(1.0, [token] { (void)*token; });
    sim.ScheduleCallback(2.0, [token] { (void)*token; });
    EXPECT_EQ(token.use_count(), 3);
    // Destroy without running: the kernel must still release both captures.
  }
  EXPECT_EQ(token.use_count(), 1);
}

// ---------------------------------------------------------------------------
// Frame pool and live-process bookkeeping.
// ---------------------------------------------------------------------------

Process Sleeper(Simulation& /*sim*/, double delay) { co_await Delay(delay); }

TEST(FramePoolTest, SpawnWavesReuseFramesWithoutNewReservations) {
  auto run_wave = [] {
    Simulation sim;
    Rng rng(11);
    for (int i = 0; i < 64; ++i) {
      sim.Spawn(Sleeper(sim, static_cast<double>(1 + rng.UniformInt(100))));
    }
    sim.Run();
  };
  run_wave();  // Warm the thread-local pool to its high-water mark.
  FramePool::Stats warm = FramePool::ThreadStats();
  for (int wave = 0; wave < 5; ++wave) {
    run_wave();
  }
  FramePool::Stats after = FramePool::ThreadStats();
  // Steady state: frames recycle through the free lists; the slab footprint
  // (the RSS proxy) must not grow.
  EXPECT_EQ(after.bytes_reserved, warm.bytes_reserved);
  EXPECT_EQ(after.slabs_allocated, warm.slabs_allocated);
  EXPECT_GT(after.pool_allocs, warm.pool_allocs);
  EXPECT_EQ(after.live_frames, warm.live_frames);
}

TEST(LiveProcessTest, RandomOrderFinishKeepsCountExact) {
  Simulation sim;
  // Distinct delays in shuffled order: processes finish in a different order
  // than they were spawned, exercising the swap-with-back slot maintenance.
  Rng rng(5);
  std::vector<uint32_t> delays = rng.Permutation(40);
  for (uint32_t d : delays) {
    sim.Spawn(Sleeper(sim, static_cast<double>(d) + 1.0));
  }
  EXPECT_EQ(sim.live_processes(), 40);
  // Probe mid-run: at time 20.5 every process with delay <= 20 has finished.
  sim.RunUntil(20.5);
  EXPECT_EQ(sim.live_processes(), 20);
  sim.Run();
  EXPECT_EQ(sim.live_processes(), 0);
  EXPECT_EQ(sim.CalendarDepth(), 0u);
}

}  // namespace
}  // namespace emsim::sim

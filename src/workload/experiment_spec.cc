#include "workload/experiment_spec.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "util/str.h"

namespace emsim::workload {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

/// Error-location prefix: "file.ini:12" when the spec names its source,
/// "line 12" for in-memory text (keeps the historical message shape).
std::string Where(const std::string& source, int line) {
  return source.empty() ? StrFormat("line %d", line)
                        : StrFormat("%s:%d", source.c_str(), line);
}

Status ApplyKey(const std::string& key, const std::string& value, ExperimentSpec* spec,
                const std::string& source, int line) {
  auto bad = [&](const std::string& why) {
    return Status::InvalidArgument(
        StrFormat("%s: %s", Where(source, line).c_str(), why.c_str()));
  };
  auto parse_int = [&](int64_t* out) -> Status {
    char* end = nullptr;
    errno = 0;
    long long v = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
      return bad(StrFormat("'%s' is not an integer for key '%s'", value.c_str(),
                           key.c_str()));
    }
    // strtoll saturates on overflow; without this check a huge literal would
    // be accepted, then truncated to garbage by the narrowing casts below
    // (found by fuzz_experiment_spec: the saturated value breaks the
    // ToSpec -> ParseExperimentSpec round-trip).
    if (errno == ERANGE) {
      return bad(StrFormat("'%s' is out of range for key '%s'", value.c_str(),
                           key.c_str()));
    }
    *out = v;
    return Status::OK();
  };
  auto parse_int32 = [&](int* out) -> Status {
    int64_t wide = 0;
    EMSIM_RETURN_IF_ERROR(parse_int(&wide));
    if (wide < std::numeric_limits<int>::min() ||
        wide > std::numeric_limits<int>::max()) {
      return bad(StrFormat("'%s' is out of range for key '%s'", value.c_str(),
                           key.c_str()));
    }
    *out = static_cast<int>(wide);
    return Status::OK();
  };
  auto parse_double = [&](double* out) -> Status {
    char* end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return bad(StrFormat("'%s' is not a number for key '%s'", value.c_str(), key.c_str()));
    }
    *out = v;
    return Status::OK();
  };

  core::MergeConfig& cfg = spec->config;
  int64_t v = 0;
  if (key == "runs") {
    EMSIM_RETURN_IF_ERROR(parse_int32(&cfg.num_runs));
  } else if (key == "disks") {
    EMSIM_RETURN_IF_ERROR(parse_int32(&cfg.num_disks));
  } else if (key == "blocks") {
    EMSIM_RETURN_IF_ERROR(parse_int(&v));
    cfg.blocks_per_run = v;
  } else if (key == "n") {
    EMSIM_RETURN_IF_ERROR(parse_int32(&cfg.prefetch_depth));
  } else if (key == "cache") {
    EMSIM_RETURN_IF_ERROR(parse_int(&v));
    cfg.cache_blocks = v;
  } else if (key == "seed") {
    EMSIM_RETURN_IF_ERROR(parse_int(&v));
    cfg.seed = static_cast<uint64_t>(v);
  } else if (key == "trials") {
    EMSIM_RETURN_IF_ERROR(parse_int32(&spec->trials));
    if (spec->trials < 1) {
      return bad("trials must be >= 1");
    }
  } else if (key == "strategy") {
    auto parsed = core::ParseStrategy(value);
    if (!parsed.ok()) {
      return bad(parsed.status().message());
    }
    cfg.strategy = *parsed;
  } else if (key == "sync") {
    auto parsed = core::ParseSyncMode(value);
    if (!parsed.ok()) {
      return bad(parsed.status().message());
    }
    cfg.sync = *parsed;
  } else if (key == "admission") {
    auto parsed = core::ParseAdmissionPolicy(value);
    if (!parsed.ok()) {
      return bad(parsed.status().message());
    }
    cfg.admission = *parsed;
  } else if (key == "victim") {
    auto parsed = core::ParseVictimPolicy(value);
    if (!parsed.ok()) {
      return bad(parsed.status().message());
    }
    cfg.victim = *parsed;
  } else if (key == "depletion") {
    auto parsed = core::ParseDepletionKind(value);
    if (!parsed.ok()) {
      return bad(parsed.status().message());
    }
    if (*parsed == core::DepletionKind::kTrace) {
      return bad("trace depletion cannot be expressed in a spec file");
    }
    cfg.depletion = *parsed;
  } else if (key == "zipf_theta") {
    EMSIM_RETURN_IF_ERROR(parse_double(&cfg.zipf_theta));
  } else if (key == "cpu_ms") {
    EMSIM_RETURN_IF_ERROR(parse_double(&cfg.cpu_ms_per_block));
  } else if (key == "write_traffic") {
    auto parsed = core::ParseWriteTraffic(value);
    if (!parsed.ok()) {
      return bad(parsed.status().message());
    }
    cfg.write_traffic = *parsed;
  } else if (key == "write_disks") {
    EMSIM_RETURN_IF_ERROR(parse_int32(&cfg.num_write_disks));
  } else if (key == "write_batch") {
    EMSIM_RETURN_IF_ERROR(parse_int32(&cfg.write_batch_blocks));
  } else if (key == "fault_media_error_rate") {
    EMSIM_RETURN_IF_ERROR(parse_double(&cfg.fault.media_error_rate));
  } else if (key == "fault_spike_rate") {
    EMSIM_RETURN_IF_ERROR(parse_double(&cfg.fault.latency_spike_rate));
  } else if (key == "fault_spike_ms") {
    EMSIM_RETURN_IF_ERROR(parse_double(&cfg.fault.latency_spike_ms));
  } else if (key == "fault_slow_disk") {
    EMSIM_RETURN_IF_ERROR(parse_int32(&cfg.fault.fail_slow_disk));
  } else if (key == "fault_slow_factor") {
    EMSIM_RETURN_IF_ERROR(parse_double(&cfg.fault.fail_slow_factor));
  } else if (key == "fault_slow_start_ms") {
    EMSIM_RETURN_IF_ERROR(parse_double(&cfg.fault.fail_slow_start_ms));
  } else if (key == "fault_slow_end_ms") {
    EMSIM_RETURN_IF_ERROR(parse_double(&cfg.fault.fail_slow_end_ms));
  } else if (key == "fault_stop_disk") {
    EMSIM_RETURN_IF_ERROR(parse_int32(&cfg.fault.fail_stop_disk));
  } else if (key == "fault_stop_start_ms") {
    EMSIM_RETURN_IF_ERROR(parse_double(&cfg.fault.fail_stop_start_ms));
  } else if (key == "fault_stop_end_ms") {
    EMSIM_RETURN_IF_ERROR(parse_double(&cfg.fault.fail_stop_end_ms));
  } else if (key == "fault_seed") {
    EMSIM_RETURN_IF_ERROR(parse_int(&v));
    cfg.fault.seed = static_cast<uint64_t>(v);
  } else if (key == "fault_max_retries") {
    EMSIM_RETURN_IF_ERROR(parse_int32(&cfg.fault.retry.max_retries));
  } else if (key == "fault_timeout_ms") {
    EMSIM_RETURN_IF_ERROR(parse_double(&cfg.fault.retry.timeout_ms));
  } else if (key == "fault_backoff_ms") {
    EMSIM_RETURN_IF_ERROR(parse_double(&cfg.fault.retry.backoff_base_ms));
  } else if (key == "fault_backoff_mult") {
    EMSIM_RETURN_IF_ERROR(parse_double(&cfg.fault.retry.backoff_multiplier));
  } else {
    return bad(StrFormat("unknown key '%s'", key.c_str()));
  }
  return Status::OK();
}

}  // namespace

namespace {

struct RawKv {
  std::string key;
  std::string value;  // May contain commas: a sweep over values.
  int line;
};

struct RawSection {
  std::string name;
  std::vector<RawKv> kvs;
};

/// Expands a section's sweep keys (comma-separated values) into the cross
/// product of concrete experiments, suffixing names with "/key=value".
Status ExpandSection(const ExperimentSpec& defaults, const RawSection& section,
                     const std::string& source, std::vector<ExperimentSpec>* out) {
  std::vector<std::pair<ExperimentSpec, std::string>> variants;
  variants.emplace_back(defaults, section.name);
  constexpr size_t kMaxVariants = 1024;
  for (const RawKv& kv : section.kvs) {
    std::vector<std::string> values = StrSplit(kv.value, ',');
    for (std::string& v : values) {
      v.erase(0, v.find_first_not_of(" \t"));
      size_t end = v.find_last_not_of(" \t");
      if (end != std::string::npos) {
        v.resize(end + 1);
      }
      if (v.empty()) {
        return Status::InvalidArgument(
            StrFormat("%s: empty value in sweep for key '%s'",
                      Where(source, kv.line).c_str(), kv.key.c_str()));
      }
    }
    std::vector<std::pair<ExperimentSpec, std::string>> next;
    for (const auto& [spec, name] : variants) {
      for (const std::string& v : values) {
        ExperimentSpec candidate = spec;
        EMSIM_RETURN_IF_ERROR(ApplyKey(kv.key, v, &candidate, source, kv.line));
        std::string candidate_name =
            values.size() == 1 ? name : name + "/" + kv.key + "=" + v;
        next.emplace_back(std::move(candidate), std::move(candidate_name));
        if (next.size() > kMaxVariants) {
          return Status::InvalidArgument(
              StrFormat("section [%s] sweeps expand past %zu experiments",
                        section.name.c_str(), kMaxVariants));
        }
      }
    }
    variants = std::move(next);
  }
  for (auto& [spec, name] : variants) {
    spec.name = name;
    out->push_back(std::move(spec));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<ExperimentSpec>> ParseExperimentSpec(const std::string& text,
                                                        const std::string& source) {
  ExperimentSpec defaults;
  std::vector<RawSection> sections;
  RawSection* current = nullptr;

  int line_number = 0;
  for (const std::string& raw : StrSplit(text, '\n')) {
    ++line_number;
    std::string line = Trim(raw);
    size_t comment = line.find('#');
    if (comment != std::string::npos) {
      line = Trim(line.substr(0, comment));
    }
    if (line.empty()) {
      continue;
    }
    if (line.front() == '[') {
      if (line.back() != ']') {
        return Status::InvalidArgument(
            StrFormat("%s: unterminated section header",
                      Where(source, line_number).c_str()));
      }
      std::string name = Trim(line.substr(1, line.size() - 2));
      if (name.empty()) {
        return Status::InvalidArgument(
            StrFormat("%s: empty section name", Where(source, line_number).c_str()));
      }
      sections.push_back(RawSection{name, {}});
      current = &sections.back();
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("%s: expected 'key = value'", Where(source, line_number).c_str()));
    }
    std::string key = Trim(line.substr(0, eq));
    std::string value = Trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      return Status::InvalidArgument(
          StrFormat("%s: empty key or value", Where(source, line_number).c_str()));
    }
    if (current == nullptr) {
      // Defaults: applied immediately; no sweeps here.
      if (value.find(',') != std::string::npos) {
        return Status::InvalidArgument(
            StrFormat("%s: sweeps are only allowed inside sections",
                      Where(source, line_number).c_str()));
      }
      EMSIM_RETURN_IF_ERROR(ApplyKey(key, value, &defaults, source, line_number));
    } else {
      current->kvs.push_back(RawKv{key, value, line_number});
    }
  }
  if (sections.empty()) {
    return Status::InvalidArgument("spec defines no [experiment] sections");
  }
  std::vector<ExperimentSpec> specs;
  for (const RawSection& section : sections) {
    EMSIM_RETURN_IF_ERROR(ExpandSection(defaults, section, source, &specs));
  }
  for (const ExperimentSpec& spec : specs) {
    Status status = spec.config.Validate();
    if (!status.ok()) {
      return Status::InvalidArgument(
          StrFormat("experiment [%s]: %s", spec.name.c_str(), status.message().c_str()));
    }
  }
  return specs;
}

Result<std::vector<ExperimentSpec>> LoadExperimentSpec(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open spec file '%s'", path.c_str()));
  }
  std::string text;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(f);
  return ParseExperimentSpec(text, path);
}

std::string ToSpec(const ExperimentSpec& spec) {
  const core::MergeConfig& cfg = spec.config;
  std::string out = StrFormat("[%s]\n", spec.name.empty() ? "experiment" : spec.name.c_str());
  out += StrFormat("runs = %d\n", cfg.num_runs);
  out += StrFormat("disks = %d\n", cfg.num_disks);
  out += StrFormat("blocks = %lld\n", static_cast<long long>(cfg.blocks_per_run));
  out += StrFormat("n = %d\n", cfg.prefetch_depth);
  if (cfg.cache_blocks != core::MergeConfig::kAutoCache) {
    out += StrFormat("cache = %lld\n", static_cast<long long>(cfg.cache_blocks));
  }
  out += StrFormat("strategy = %s\n", core::StrategyName(cfg.strategy));
  out += StrFormat("sync = %s\n", core::SyncModeName(cfg.sync));
  out += StrFormat("admission = %s\n", core::AdmissionPolicyName(cfg.admission));
  out += StrFormat("victim = %s\n", core::VictimPolicyName(cfg.victim));
  out += StrFormat("depletion = %s\n", core::DepletionKindName(cfg.depletion));
  if (cfg.depletion == core::DepletionKind::kZipf) {
    out += StrFormat("zipf_theta = %g\n", cfg.zipf_theta);
  }
  if (cfg.cpu_ms_per_block > 0) {
    out += StrFormat("cpu_ms = %g\n", cfg.cpu_ms_per_block);
  }
  if (cfg.write_traffic != core::WriteTraffic::kNone) {
    out += StrFormat("write_traffic = %s\n", core::WriteTrafficName(cfg.write_traffic));
    out += StrFormat("write_disks = %d\n", cfg.num_write_disks);
    out += StrFormat("write_batch = %d\n", cfg.write_batch_blocks);
  }
  if (cfg.fault.InjectionEnabled()) {
    if (cfg.fault.media_error_rate > 0) {
      out += StrFormat("fault_media_error_rate = %g\n", cfg.fault.media_error_rate);
    }
    if (cfg.fault.latency_spike_rate > 0) {
      out += StrFormat("fault_spike_rate = %g\n", cfg.fault.latency_spike_rate);
      out += StrFormat("fault_spike_ms = %g\n", cfg.fault.latency_spike_ms);
    }
    if (cfg.fault.fail_slow_disk >= 0) {
      out += StrFormat("fault_slow_disk = %d\n", cfg.fault.fail_slow_disk);
      out += StrFormat("fault_slow_factor = %g\n", cfg.fault.fail_slow_factor);
      out += StrFormat("fault_slow_start_ms = %g\n", cfg.fault.fail_slow_start_ms);
      out += StrFormat("fault_slow_end_ms = %g\n", cfg.fault.fail_slow_end_ms);
    }
    if (cfg.fault.fail_stop_disk >= 0) {
      out += StrFormat("fault_stop_disk = %d\n", cfg.fault.fail_stop_disk);
      out += StrFormat("fault_stop_start_ms = %g\n", cfg.fault.fail_stop_start_ms);
      out += StrFormat("fault_stop_end_ms = %g\n", cfg.fault.fail_stop_end_ms);
    }
    if (cfg.fault.seed != 0) {
      out += StrFormat("fault_seed = %llu\n",
                       static_cast<unsigned long long>(cfg.fault.seed));
    }
    out += StrFormat("fault_max_retries = %d\n", cfg.fault.retry.max_retries);
    out += StrFormat("fault_timeout_ms = %g\n", cfg.fault.retry.timeout_ms);
    out += StrFormat("fault_backoff_ms = %g\n", cfg.fault.retry.backoff_base_ms);
    out += StrFormat("fault_backoff_mult = %g\n", cfg.fault.retry.backoff_multiplier);
  }
  out += StrFormat("seed = %llu\n", static_cast<unsigned long long>(cfg.seed));
  out += StrFormat("trials = %d\n", spec.trials);
  return out;
}

}  // namespace emsim::workload

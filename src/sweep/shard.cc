#include "sweep/shard.h"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "disk/disk.h"
#include "obs/metrics.h"
#include "stats/accumulator.h"
#include "stats/json_writer.h"
#include "sweep/json_value.h"
#include "util/check.h"
#include "util/str.h"

namespace emsim::sweep {

namespace {

// ---------------------------------------------------------------------------
// Encode helpers
// ---------------------------------------------------------------------------

void WriteDiskStats(stats::JsonWriter& w, const disk::DiskStats& s) {
  w.BeginObject();
  w.Field("requests", s.requests);
  w.Field("demand_requests", s.demand_requests);
  w.Field("blocks_transferred", s.blocks_transferred);
  w.Field("seeks", s.seeks);
  w.Field("seek_cylinders", s.seek_cylinders);
  w.Field("seek_ms", s.seek_ms);
  w.Field("rotation_ms", s.rotation_ms);
  w.Field("transfer_ms", s.transfer_ms);
  w.Field("queue_wait_ms", s.queue_wait_ms);
  w.Field("max_queue_length", static_cast<uint64_t>(s.max_queue_length));
  w.Field("media_errors", s.media_errors);
  w.Field("latency_spikes", s.latency_spikes);
  w.Field("dropped_requests", s.dropped_requests);
  w.Field("fail_stop_ms", s.fail_stop_ms);
  w.Field("fault_extra_ms", s.fault_extra_ms);
  w.EndObject();
}

void WriteAccumulatorState(stats::JsonWriter& w, const stats::Accumulator& acc) {
  stats::Accumulator::State s = acc.state();
  w.BeginObject();
  w.Field("count", s.count);
  if (s.count > 0) {
    // min/max are ±inf sentinels when empty — JSON has no Inf, so the empty
    // state is encoded by the count alone.
    w.Field("mean", s.mean);
    w.Field("m2", s.m2);
    w.Field("min", s.min);
    w.Field("max", s.max);
  }
  w.EndObject();
}

void WriteMergeResult(stats::JsonWriter& w, const core::MergeResult& r) {
  w.BeginObject();
  w.Field("total_ms", r.total_ms);
  w.Field("blocks_merged", r.blocks_merged);
  w.Field("io_operations", r.io_operations);
  w.Field("full_admissions", r.full_admissions);
  w.Field("demand_stalls", r.demand_stalls);
  w.Field("cache_hits", r.cache_hits);
  w.Field("cpu_busy_ms", r.cpu_busy_ms);
  w.Field("avg_concurrency", r.avg_concurrency);
  w.Field("disk_active_fraction", r.disk_active_fraction);
  w.Field("mean_cache_occupancy", r.mean_cache_occupancy);
  w.Key("disk_totals");
  WriteDiskStats(w, r.disk_totals);
  w.Key("cache_stats");
  w.BeginObject();
  w.Field("deposits", r.cache_stats.deposits);
  w.Field("consumptions", r.cache_stats.consumptions);
  w.Field("reservations_granted", r.cache_stats.reservations_granted);
  w.Field("reservations_denied", r.cache_stats.reservations_denied);
  w.Field("blocks_reserved", r.cache_stats.blocks_reserved);
  w.Field("peak_occupancy", r.cache_stats.peak_occupancy);
  w.EndObject();
  w.Key("stall_ms");
  WriteAccumulatorState(w, r.stall_ms);
  w.Field("write_blocks", r.write_blocks);
  w.Field("write_requests", r.write_requests);
  w.Field("write_stalls", r.write_stalls);
  w.Field("write_drain_ms", r.write_drain_ms);
  w.Field("sim_events", r.sim_events);
  w.Key("fault");
  w.BeginObject();
  w.Field("injection_enabled", r.fault.injection_enabled);
  w.Field("media_errors", r.fault.media_errors);
  w.Field("latency_spikes", r.fault.latency_spikes);
  w.Field("timeouts", r.fault.timeouts);
  w.Field("retries", r.fault.retries);
  w.Field("dropped_requests", r.fault.dropped_requests);
  w.Field("permanent_failures", r.fault.permanent_failures);
  w.Field("degraded_plans", r.fault.degraded_plans);
  w.Field("quarantine_events", r.fault.quarantine_events);
  w.Field("backoff_ms", r.fault.backoff_ms);
  w.Field("fail_stop_ms", r.fault.fail_stop_ms);
  w.Field("quarantine_ms", r.fault.quarantine_ms);
  w.EndObject();
  w.Key("per_disk");
  w.BeginArray();
  for (const disk::DiskUtilization& u : r.per_disk) {
    w.BeginObject();
    w.Field("id", u.id);
    w.Field("busy_fraction", u.busy_fraction);
    w.Field("mean_queue_length", u.mean_queue_length);
    w.Key("stats");
    WriteDiskStats(w, u.stats);
    w.EndObject();
  }
  w.EndArray();
  w.Key("metrics");
  w.BeginArray();
  for (const obs::MetricsRegistry::Sample& sample : r.metrics) {
    w.BeginObject();
    w.Field("name", sample.name);
    w.Field("value", sample.value);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

// ---------------------------------------------------------------------------
// Decode helpers
// ---------------------------------------------------------------------------

Result<const JsonValue*> Field(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    return Status::Corruption(StrFormat("shard artifact: missing field '%s'", key));
  }
  return v;
}

Status ReadU64(const JsonValue& obj, const char* key, uint64_t* out) {
  auto v = Field(obj, key);
  EMSIM_RETURN_IF_ERROR(v.status());
  if ((*v)->kind != JsonValue::Kind::kNumber || !(*v)->is_integral || (*v)->is_negative) {
    return Status::Corruption(StrFormat("shard artifact: '%s' is not a u64", key));
  }
  *out = (*v)->magnitude;
  return Status::OK();
}

Status ReadI64(const JsonValue& obj, const char* key, int64_t* out) {
  auto v = Field(obj, key);
  EMSIM_RETURN_IF_ERROR(v.status());
  if ((*v)->kind != JsonValue::Kind::kNumber || !(*v)->is_integral) {
    return Status::Corruption(StrFormat("shard artifact: '%s' is not an integer", key));
  }
  uint64_t mag = (*v)->magnitude;
  if ((*v)->is_negative) {
    if (mag > static_cast<uint64_t>(INT64_MAX) + 1) {
      return Status::Corruption(StrFormat("shard artifact: '%s' out of range", key));
    }
    *out = static_cast<int64_t>(0 - mag);
  } else {
    if (mag > static_cast<uint64_t>(INT64_MAX)) {
      return Status::Corruption(StrFormat("shard artifact: '%s' out of range", key));
    }
    *out = static_cast<int64_t>(mag);
  }
  return Status::OK();
}

Status ReadInt(const JsonValue& obj, const char* key, int* out) {
  int64_t v = 0;
  EMSIM_RETURN_IF_ERROR(ReadI64(obj, key, &v));
  if (v < INT32_MIN || v > INT32_MAX) {
    return Status::Corruption(StrFormat("shard artifact: '%s' out of int range", key));
  }
  *out = static_cast<int>(v);
  return Status::OK();
}

Status ReadDouble(const JsonValue& obj, const char* key, double* out) {
  auto v = Field(obj, key);
  EMSIM_RETURN_IF_ERROR(v.status());
  if ((*v)->kind != JsonValue::Kind::kNumber) {
    return Status::Corruption(StrFormat("shard artifact: '%s' is not a number", key));
  }
  *out = (*v)->number;
  return Status::OK();
}

Status ReadBool(const JsonValue& obj, const char* key, bool* out) {
  auto v = Field(obj, key);
  EMSIM_RETURN_IF_ERROR(v.status());
  if ((*v)->kind != JsonValue::Kind::kBool) {
    return Status::Corruption(StrFormat("shard artifact: '%s' is not a bool", key));
  }
  *out = (*v)->bool_value;
  return Status::OK();
}

Status ReadString(const JsonValue& obj, const char* key, std::string* out) {
  auto v = Field(obj, key);
  EMSIM_RETURN_IF_ERROR(v.status());
  if ((*v)->kind != JsonValue::Kind::kString) {
    return Status::Corruption(StrFormat("shard artifact: '%s' is not a string", key));
  }
  *out = (*v)->string;
  return Status::OK();
}

Status ReadDiskStats(const JsonValue& obj, disk::DiskStats* s) {
  uint64_t max_queue = 0;
  EMSIM_RETURN_IF_ERROR(ReadU64(obj, "requests", &s->requests));
  EMSIM_RETURN_IF_ERROR(ReadU64(obj, "demand_requests", &s->demand_requests));
  EMSIM_RETURN_IF_ERROR(ReadU64(obj, "blocks_transferred", &s->blocks_transferred));
  EMSIM_RETURN_IF_ERROR(ReadU64(obj, "seeks", &s->seeks));
  EMSIM_RETURN_IF_ERROR(ReadI64(obj, "seek_cylinders", &s->seek_cylinders));
  EMSIM_RETURN_IF_ERROR(ReadDouble(obj, "seek_ms", &s->seek_ms));
  EMSIM_RETURN_IF_ERROR(ReadDouble(obj, "rotation_ms", &s->rotation_ms));
  EMSIM_RETURN_IF_ERROR(ReadDouble(obj, "transfer_ms", &s->transfer_ms));
  EMSIM_RETURN_IF_ERROR(ReadDouble(obj, "queue_wait_ms", &s->queue_wait_ms));
  EMSIM_RETURN_IF_ERROR(ReadU64(obj, "max_queue_length", &max_queue));
  s->max_queue_length = static_cast<size_t>(max_queue);
  EMSIM_RETURN_IF_ERROR(ReadU64(obj, "media_errors", &s->media_errors));
  EMSIM_RETURN_IF_ERROR(ReadU64(obj, "latency_spikes", &s->latency_spikes));
  EMSIM_RETURN_IF_ERROR(ReadU64(obj, "dropped_requests", &s->dropped_requests));
  EMSIM_RETURN_IF_ERROR(ReadDouble(obj, "fail_stop_ms", &s->fail_stop_ms));
  EMSIM_RETURN_IF_ERROR(ReadDouble(obj, "fault_extra_ms", &s->fault_extra_ms));
  return Status::OK();
}

Status ReadAccumulator(const JsonValue& obj, stats::Accumulator* out) {
  stats::Accumulator::State s;
  EMSIM_RETURN_IF_ERROR(ReadU64(obj, "count", &s.count));
  if (s.count > 0) {
    EMSIM_RETURN_IF_ERROR(ReadDouble(obj, "mean", &s.mean));
    EMSIM_RETURN_IF_ERROR(ReadDouble(obj, "m2", &s.m2));
    EMSIM_RETURN_IF_ERROR(ReadDouble(obj, "min", &s.min));
    EMSIM_RETURN_IF_ERROR(ReadDouble(obj, "max", &s.max));
  }
  *out = stats::Accumulator::FromState(s);
  return Status::OK();
}

Status ReadMergeResult(const JsonValue& obj, core::MergeResult* r) {
  EMSIM_RETURN_IF_ERROR(ReadDouble(obj, "total_ms", &r->total_ms));
  EMSIM_RETURN_IF_ERROR(ReadI64(obj, "blocks_merged", &r->blocks_merged));
  EMSIM_RETURN_IF_ERROR(ReadU64(obj, "io_operations", &r->io_operations));
  EMSIM_RETURN_IF_ERROR(ReadU64(obj, "full_admissions", &r->full_admissions));
  EMSIM_RETURN_IF_ERROR(ReadU64(obj, "demand_stalls", &r->demand_stalls));
  EMSIM_RETURN_IF_ERROR(ReadU64(obj, "cache_hits", &r->cache_hits));
  EMSIM_RETURN_IF_ERROR(ReadDouble(obj, "cpu_busy_ms", &r->cpu_busy_ms));
  EMSIM_RETURN_IF_ERROR(ReadDouble(obj, "avg_concurrency", &r->avg_concurrency));
  EMSIM_RETURN_IF_ERROR(ReadDouble(obj, "disk_active_fraction", &r->disk_active_fraction));
  EMSIM_RETURN_IF_ERROR(ReadDouble(obj, "mean_cache_occupancy", &r->mean_cache_occupancy));

  auto disk_totals = Field(obj, "disk_totals");
  EMSIM_RETURN_IF_ERROR(disk_totals.status());
  EMSIM_RETURN_IF_ERROR(ReadDiskStats(**disk_totals, &r->disk_totals));

  auto cache_stats = Field(obj, "cache_stats");
  EMSIM_RETURN_IF_ERROR(cache_stats.status());
  EMSIM_RETURN_IF_ERROR(ReadU64(**cache_stats, "deposits", &r->cache_stats.deposits));
  EMSIM_RETURN_IF_ERROR(ReadU64(**cache_stats, "consumptions", &r->cache_stats.consumptions));
  EMSIM_RETURN_IF_ERROR(
      ReadU64(**cache_stats, "reservations_granted", &r->cache_stats.reservations_granted));
  EMSIM_RETURN_IF_ERROR(
      ReadU64(**cache_stats, "reservations_denied", &r->cache_stats.reservations_denied));
  EMSIM_RETURN_IF_ERROR(
      ReadU64(**cache_stats, "blocks_reserved", &r->cache_stats.blocks_reserved));
  EMSIM_RETURN_IF_ERROR(
      ReadI64(**cache_stats, "peak_occupancy", &r->cache_stats.peak_occupancy));

  auto stall = Field(obj, "stall_ms");
  EMSIM_RETURN_IF_ERROR(stall.status());
  EMSIM_RETURN_IF_ERROR(ReadAccumulator(**stall, &r->stall_ms));

  EMSIM_RETURN_IF_ERROR(ReadU64(obj, "write_blocks", &r->write_blocks));
  EMSIM_RETURN_IF_ERROR(ReadU64(obj, "write_requests", &r->write_requests));
  EMSIM_RETURN_IF_ERROR(ReadU64(obj, "write_stalls", &r->write_stalls));
  EMSIM_RETURN_IF_ERROR(ReadDouble(obj, "write_drain_ms", &r->write_drain_ms));
  EMSIM_RETURN_IF_ERROR(ReadU64(obj, "sim_events", &r->sim_events));

  auto fault = Field(obj, "fault");
  EMSIM_RETURN_IF_ERROR(fault.status());
  EMSIM_RETURN_IF_ERROR(ReadBool(**fault, "injection_enabled", &r->fault.injection_enabled));
  EMSIM_RETURN_IF_ERROR(ReadU64(**fault, "media_errors", &r->fault.media_errors));
  EMSIM_RETURN_IF_ERROR(ReadU64(**fault, "latency_spikes", &r->fault.latency_spikes));
  EMSIM_RETURN_IF_ERROR(ReadU64(**fault, "timeouts", &r->fault.timeouts));
  EMSIM_RETURN_IF_ERROR(ReadU64(**fault, "retries", &r->fault.retries));
  EMSIM_RETURN_IF_ERROR(ReadU64(**fault, "dropped_requests", &r->fault.dropped_requests));
  EMSIM_RETURN_IF_ERROR(ReadU64(**fault, "permanent_failures", &r->fault.permanent_failures));
  EMSIM_RETURN_IF_ERROR(ReadU64(**fault, "degraded_plans", &r->fault.degraded_plans));
  EMSIM_RETURN_IF_ERROR(ReadU64(**fault, "quarantine_events", &r->fault.quarantine_events));
  EMSIM_RETURN_IF_ERROR(ReadDouble(**fault, "backoff_ms", &r->fault.backoff_ms));
  EMSIM_RETURN_IF_ERROR(ReadDouble(**fault, "fail_stop_ms", &r->fault.fail_stop_ms));
  EMSIM_RETURN_IF_ERROR(ReadDouble(**fault, "quarantine_ms", &r->fault.quarantine_ms));

  auto per_disk = Field(obj, "per_disk");
  EMSIM_RETURN_IF_ERROR(per_disk.status());
  if ((*per_disk)->kind != JsonValue::Kind::kArray) {
    return Status::Corruption("shard artifact: 'per_disk' is not an array");
  }
  for (const JsonValue& entry : (*per_disk)->items) {
    disk::DiskUtilization u;
    EMSIM_RETURN_IF_ERROR(ReadInt(entry, "id", &u.id));
    EMSIM_RETURN_IF_ERROR(ReadDouble(entry, "busy_fraction", &u.busy_fraction));
    EMSIM_RETURN_IF_ERROR(ReadDouble(entry, "mean_queue_length", &u.mean_queue_length));
    auto stats = Field(entry, "stats");
    EMSIM_RETURN_IF_ERROR(stats.status());
    EMSIM_RETURN_IF_ERROR(ReadDiskStats(**stats, &u.stats));
    r->per_disk.push_back(u);
  }

  auto metrics = Field(obj, "metrics");
  EMSIM_RETURN_IF_ERROR(metrics.status());
  if ((*metrics)->kind != JsonValue::Kind::kArray) {
    return Status::Corruption("shard artifact: 'metrics' is not an array");
  }
  for (const JsonValue& entry : (*metrics)->items) {
    obs::MetricsRegistry::Sample sample;
    EMSIM_RETURN_IF_ERROR(ReadString(entry, "name", &sample.name));
    EMSIM_RETURN_IF_ERROR(ReadDouble(entry, "value", &sample.value));
    r->metrics.push_back(std::move(sample));
  }
  return Status::OK();
}

Result<StatusCode> ParseStatusCodeName(const std::string& name) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kOk,              StatusCode::kInvalidArgument,
      StatusCode::kNotFound,
      StatusCode::kOutOfRange,      StatusCode::kFailedPrecondition,
      StatusCode::kResourceExhausted, StatusCode::kInternal,
      StatusCode::kUnimplemented,   StatusCode::kCorruption,
      StatusCode::kIoError,         StatusCode::kDeadlineExceeded,
  };
  for (StatusCode code : kCodes) {
    if (name == StatusCodeName(code)) {
      return code;
    }
  }
  return Status::Corruption(StrFormat("shard artifact: unknown status code '%s'", name.c_str()));
}

}  // namespace

uint64_t Fnv1aDigest(std::string_view bytes) {
  uint64_t hash = 14695981039346656037ULL;  // FNV-1a offset basis.
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ULL;  // FNV prime.
  }
  return hash;
}

namespace {

std::string FooterLine(size_t payload_size, uint64_t digest) {
  return StrFormat("#emsim-shard-footer v1 len=%llu fnv1a=%016llx\n",
                   static_cast<unsigned long long>(payload_size),
                   static_cast<unsigned long long>(digest));
}

}  // namespace

std::string SealShardArtifact(std::string payload) {
  if (payload.empty() || payload.back() != '\n') {
    payload.push_back('\n');
  }
  payload += FooterLine(payload.size(), Fnv1aDigest(payload));
  return payload;
}

Result<std::string> UnsealShardArtifact(std::string_view file_contents) {
  constexpr std::string_view kMarker = "#emsim-shard-footer ";
  size_t pos = file_contents.rfind(kMarker);
  if (pos == std::string_view::npos || (pos != 0 && file_contents[pos - 1] != '\n')) {
    return Status::Corruption(
        "shard artifact: integrity footer missing (truncated or pre-footer file?)");
  }
  std::string_view footer = file_contents.substr(pos);
  unsigned long long len = 0;
  char digest_hex[17] = {0};
  if (std::sscanf(std::string(footer).c_str(),
                  "#emsim-shard-footer v1 len=%llu fnv1a=%16[0-9a-f]", &len,
                  digest_hex) != 2 ||
      footer != FooterLine(len, std::strtoull(digest_hex, nullptr, 16))) {
    return Status::Corruption("shard artifact: malformed integrity footer");
  }
  std::string_view payload = file_contents.substr(0, pos);
  if (payload.size() != len) {
    return Status::Corruption(
        StrFormat("shard artifact: payload is %zu bytes but footer recorded %llu — "
                  "truncated or spliced body",
                  payload.size(), len));
  }
  uint64_t want = std::strtoull(digest_hex, nullptr, 16);
  uint64_t got = Fnv1aDigest(payload);
  if (got != want) {
    return Status::Corruption(
        StrFormat("shard artifact: content digest %016llx does not match footer %016llx — "
                  "payload corrupted after sealing",
                  static_cast<unsigned long long>(got),
                  static_cast<unsigned long long>(want)));
  }
  return std::string(payload);
}

ShardRange ShardSlice(int total_tasks, int shard_index, int num_shards) {
  EMSIM_CHECK(num_shards >= 1 && shard_index >= 0 && shard_index < num_shards);
  EMSIM_CHECK(total_tasks >= 0);
  int base = total_tasks / num_shards;
  int extra = total_tasks % num_shards;
  int begin = shard_index * base + (shard_index < extra ? shard_index : extra);
  int size = base + (shard_index < extra ? 1 : 0);
  return ShardRange{begin, begin + size};
}

std::vector<core::SweepUnit> UnitsFromSpecs(
    const std::vector<workload::ExperimentSpec>& specs) {
  std::vector<core::SweepUnit> units;
  units.reserve(specs.size());
  for (const workload::ExperimentSpec& spec : specs) {
    units.push_back(core::SweepUnit{spec.name, spec.config, spec.trials});
  }
  return units;
}

uint64_t SpecDigest(const std::vector<core::SweepUnit>& units) {
  uint64_t hash = 14695981039346656037ULL;  // FNV-1a offset basis.
  auto mix = [&hash](const std::string& s) {
    for (unsigned char c : s) {
      hash ^= c;
      hash *= 1099511628211ULL;  // FNV prime.
    }
    hash ^= 0xFFu;  // Separator so field boundaries cannot alias.
    hash *= 1099511628211ULL;
  };
  for (const core::SweepUnit& unit : units) {
    workload::ExperimentSpec spec;
    spec.name = unit.name;
    spec.config = unit.config;
    spec.trials = unit.trials;
    mix(workload::ToSpec(spec));
  }
  return hash;
}

std::string EncodeShardArtifact(const ShardArtifact& artifact) {
  stats::JsonWriter w;
  w.BeginObject();
  w.Field("shard_schema_version", kShardSchemaVersion);
  w.Field("generator", "emsim-sweep-worker");
  w.Key("shard");
  w.BeginObject();
  w.Field("index", artifact.shard_index);
  w.Field("count", artifact.shard_count);
  w.Field("begin", artifact.range.begin);
  w.Field("end", artifact.range.end);
  w.Field("total_tasks", artifact.total_tasks);
  w.Field("spec_digest", StrFormat("%016llx",
                                   static_cast<unsigned long long>(artifact.spec_digest)));
  w.EndObject();
  w.Key("tasks");
  w.BeginArray();
  for (const ShardTask& task : artifact.tasks) {
    w.BeginObject();
    w.Field("task", task.task);
    w.Field("ok", task.ok);
    if (task.ok) {
      w.Key("result");
      WriteMergeResult(w, task.result);
    } else {
      w.Field("error_code", StatusCodeName(task.error.code()));
      w.Field("error_message", task.error.message());
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

Result<ShardArtifact> DecodeShardArtifact(const std::string& text) {
  Result<JsonValue> parsed = ParseJson(text);
  if (!parsed.ok()) {
    return Status::Corruption(
        StrFormat("shard artifact: %s", parsed.status().message().c_str()));
  }
  const JsonValue& doc = *parsed;
  int version = 0;
  EMSIM_RETURN_IF_ERROR(ReadInt(doc, "shard_schema_version", &version));
  if (version != kShardSchemaVersion) {
    return Status::Corruption(
        StrFormat("shard artifact: schema version %d, expected %d", version,
                  kShardSchemaVersion));
  }
  ShardArtifact artifact;
  auto shard = Field(doc, "shard");
  EMSIM_RETURN_IF_ERROR(shard.status());
  EMSIM_RETURN_IF_ERROR(ReadInt(**shard, "index", &artifact.shard_index));
  EMSIM_RETURN_IF_ERROR(ReadInt(**shard, "count", &artifact.shard_count));
  EMSIM_RETURN_IF_ERROR(ReadInt(**shard, "begin", &artifact.range.begin));
  EMSIM_RETURN_IF_ERROR(ReadInt(**shard, "end", &artifact.range.end));
  EMSIM_RETURN_IF_ERROR(ReadInt(**shard, "total_tasks", &artifact.total_tasks));
  std::string digest_hex;
  EMSIM_RETURN_IF_ERROR(ReadString(**shard, "spec_digest", &digest_hex));
  char* end = nullptr;
  artifact.spec_digest = std::strtoull(digest_hex.c_str(), &end, 16);
  if (digest_hex.empty() || end != digest_hex.c_str() + digest_hex.size()) {
    return Status::Corruption("shard artifact: malformed spec_digest");
  }
  if (artifact.shard_count < 1 || artifact.shard_index < 0 ||
      artifact.shard_index >= artifact.shard_count || artifact.range.begin < 0 ||
      artifact.range.begin > artifact.range.end ||
      artifact.range.end > artifact.total_tasks) {
    return Status::Corruption("shard artifact: inconsistent shard header");
  }

  auto tasks = Field(doc, "tasks");
  EMSIM_RETURN_IF_ERROR(tasks.status());
  if ((*tasks)->kind != JsonValue::Kind::kArray) {
    return Status::Corruption("shard artifact: 'tasks' is not an array");
  }
  for (const JsonValue& entry : (*tasks)->items) {
    ShardTask task;
    EMSIM_RETURN_IF_ERROR(ReadInt(entry, "task", &task.task));
    EMSIM_RETURN_IF_ERROR(ReadBool(entry, "ok", &task.ok));
    if (task.ok) {
      auto result = Field(entry, "result");
      EMSIM_RETURN_IF_ERROR(result.status());
      EMSIM_RETURN_IF_ERROR(ReadMergeResult(**result, &task.result));
    } else {
      std::string code_name;
      std::string message;
      EMSIM_RETURN_IF_ERROR(ReadString(entry, "error_code", &code_name));
      EMSIM_RETURN_IF_ERROR(ReadString(entry, "error_message", &message));
      Result<StatusCode> code = ParseStatusCodeName(code_name);
      if (!code.ok()) {
        return code.status();
      }
      task.error = Status(*code, std::move(message));
    }
    artifact.tasks.push_back(std::move(task));
  }
  return artifact;
}

ShardArtifact RunShard(const core::SweepGrid& grid, int shard_index, int shard_count,
                       int num_threads, const core::TrialDeadline& deadline) {
  ShardArtifact artifact;
  artifact.shard_index = shard_index;
  artifact.shard_count = shard_count;
  artifact.total_tasks = grid.total_tasks();
  artifact.range = ShardSlice(grid.total_tasks(), shard_index, shard_count);
  artifact.spec_digest = SpecDigest(grid.units());
  core::SweepRangeOutcome outcome =
      core::RunSweepRange(grid, artifact.range.begin, artifact.range.end, num_threads, deadline);
  if (!outcome.ok()) {
    ShardTask task;
    task.task = outcome.failed_task;
    task.ok = false;
    task.error = outcome.status;
    artifact.tasks.push_back(std::move(task));
    return artifact;
  }
  artifact.tasks.reserve(static_cast<size_t>(artifact.range.size()));
  for (int i = 0; i < artifact.range.size(); ++i) {
    ShardTask task;
    task.task = artifact.range.begin + i;
    task.result = std::move(outcome.results[static_cast<size_t>(i)]);
    artifact.tasks.push_back(std::move(task));
  }
  return artifact;
}

}  // namespace emsim::sweep

#ifndef EMSIM_STATS_JSON_WRITER_H_
#define EMSIM_STATS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace emsim::stats {

/// Streaming JSON document builder with deterministic, schema-stable output:
/// two-space pretty printing, keys emitted in call order, and doubles
/// rendered with the shortest decimal form that round-trips through strtod —
/// so identical data always serializes to identical bytes (the property CI
/// diffs rely on).
///
/// Usage is push-based and validated by assertions, not a DOM:
///
///     JsonWriter w;
///     w.BeginObject();
///     w.Field("name", "fig32");
///     w.Key("trials"); w.BeginArray(); w.Int(5); w.EndArray();
///     w.EndObject();
///     std::string doc = w.Take();
///
/// Non-finite doubles serialize as null (JSON has no NaN/Inf).
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key; the next value call supplies its value.
  void Key(std::string_view name);

  void String(std::string_view value);
  void Number(double value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  void Bool(bool value);
  void Null();

  /// Key + value in one call.
  void Field(std::string_view key, std::string_view value) { Key(key); String(value); }
  void Field(std::string_view key, const char* value) { Key(key); String(value); }
  void Field(std::string_view key, double value) { Key(key); Number(value); }
  void Field(std::string_view key, int value) { Key(key); Int(value); }
  void Field(std::string_view key, int64_t value) { Key(key); Int(value); }
  void Field(std::string_view key, uint64_t value) { Key(key); UInt(value); }
  void Field(std::string_view key, bool value) { Key(key); Bool(value); }

  /// Finishes the document (must be balanced) and returns it with a trailing
  /// newline. The writer is reset and reusable afterwards.
  std::string Take();

  /// JSON string escaping (quotes not included).
  static std::string Escape(std::string_view s);

  /// Shortest decimal rendering of `v` that strtod parses back to exactly
  /// `v`; "null" for non-finite values. Exposed for tests.
  static std::string FormatDouble(double v);

 private:
  enum class Scope { kObject, kArray };

  void BeforeValue();
  void NewlineIndent();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<int> counts_;   // Values emitted in each open scope.
  bool key_pending_ = false;  // A Key() awaits its value (no newline needed).
};

}  // namespace emsim::stats

#endif  // EMSIM_STATS_JSON_WRITER_H_

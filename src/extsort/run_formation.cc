#include "extsort/run_formation.h"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <queue>

#include "util/check.h"
#include "util/status.h"

namespace emsim::extsort {

namespace {

Result<RunFormationResult> LoadSort(std::span<const Record> input, BlockDevice* device,
                                    const RunFormationOptions& options) {
  RunFormationResult out;
  int64_t next_block = options.start_block;
  std::vector<Record> workspace;
  workspace.reserve(options.memory_records);
  size_t pos = 0;
  while (pos < input.size()) {
    size_t take = std::min(options.memory_records, input.size() - pos);
    workspace.assign(input.begin() + static_cast<std::ptrdiff_t>(pos),
                     input.begin() + static_cast<std::ptrdiff_t>(pos + take));
    pos += take;
    std::sort(workspace.begin(), workspace.end());
    RunWriter writer(device, next_block);
    for (const Record& r : workspace) {
      Status status = writer.Append(r);
      if (!status.ok()) {
        return status;
      }
    }
    Result<RunDescriptor> run = writer.Finish();
    if (!run.ok()) {
      return run.status();
    }
    next_block += run->num_blocks;
    out.runs.push_back(*run);
  }
  out.next_free_block = next_block;
  return out;
}

/// Replacement selection (Knuth 5.4.1): a min-heap of (run-tag, record);
/// records smaller than the last one emitted are tagged for the next run.
Result<RunFormationResult> ReplacementSelection(std::span<const Record> input,
                                                BlockDevice* device,
                                                const RunFormationOptions& options) {
  struct Entry {
    uint64_t run_tag;
    Record record;
    bool operator>(const Entry& other) const {
      if (run_tag != other.run_tag) {
        return run_tag > other.run_tag;
      }
      return other.record < record;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

  RunFormationResult out;
  int64_t next_block = options.start_block;
  size_t pos = 0;
  for (; pos < std::min(options.memory_records, input.size()); ++pos) {
    heap.push(Entry{0, input[pos]});
  }

  uint64_t current_tag = 0;
  std::unique_ptr<RunWriter> writer;
  Record last_emitted;
  bool emitted_any = false;

  auto open_writer = [&]() { writer = std::make_unique<RunWriter>(device, next_block); };
  auto close_writer = [&]() -> Status {
    if (writer == nullptr) {
      return Status::OK();
    }
    Result<RunDescriptor> run = writer->Finish();
    if (!run.ok()) {
      return run.status();
    }
    next_block += run->num_blocks;
    out.runs.push_back(*run);
    writer.reset();
    return Status::OK();
  };

  while (!heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (top.run_tag != current_tag) {
      Status status = close_writer();
      if (!status.ok()) {
        return status;
      }
      current_tag = top.run_tag;
      emitted_any = false;
    }
    if (writer == nullptr) {
      open_writer();
    }
    Status status = writer->Append(top.record);
    if (!status.ok()) {
      return status;
    }
    last_emitted = top.record;
    emitted_any = true;
    if (pos < input.size()) {
      const Record& incoming = input[pos++];
      // A record below the current output frontier must wait for the next run.
      uint64_t tag = (emitted_any && incoming < last_emitted) ? current_tag + 1 : current_tag;
      heap.push(Entry{tag, incoming});
    }
  }
  Status status = close_writer();
  if (!status.ok()) {
    return status;
  }
  out.next_free_block = next_block;
  return out;
}

}  // namespace

Result<RunFormationResult> FormRuns(std::span<const Record> input, BlockDevice* device,
                                    const RunFormationOptions& options) {
  EMSIM_CHECK(device != nullptr);
  if (options.memory_records < 1) {
    return Status::InvalidArgument("memory_records must be >= 1");
  }
  if (input.empty()) {
    return Status::InvalidArgument("cannot form runs from empty input");
  }
  switch (options.strategy) {
    case RunFormationStrategy::kLoadSort:
      return LoadSort(input, device, options);
    case RunFormationStrategy::kReplacementSelection:
      return ReplacementSelection(input, device, options);
  }
  return Status::InvalidArgument("unknown run formation strategy");
}

}  // namespace emsim::extsort

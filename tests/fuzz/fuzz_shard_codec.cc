// Fuzz harness for the sweep wire codec: the JSON micro-parser
// (sweep/json_value) and the shard-artifact decoder (sweep/shard).
//
// Properties under fuzz:
//   1. ParseJson and DecodeShardArtifact never crash/UB/hang on arbitrary
//      bytes — malformed artifacts from a crashed or hostile worker must be
//      rejected with a Status.
//   2. The codec is a fixed point on its own output: a decoded artifact
//      re-encodes to bytes that decode again and re-encode identically.
//      This is the byte-exactness contract the N-shard merge tests pin for
//      well-formed artifacts, extended to every artifact the decoder accepts.

#include <cstddef>
#include <cstdint>
#include <string>

#include "sweep/json_value.h"
#include "sweep/shard.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  (void)emsim::sweep::ParseJson(text);  // must not crash; value irrelevant
  auto decoded = emsim::sweep::DecodeShardArtifact(text);
  if (!decoded.ok()) {
    return 0;
  }
  const std::string encoded = emsim::sweep::EncodeShardArtifact(decoded.value());
  auto second = emsim::sweep::DecodeShardArtifact(encoded);
  if (!second.ok()) {
    __builtin_trap();  // our own encoding must always decode
  }
  if (emsim::sweep::EncodeShardArtifact(second.value()) != encoded) {
    __builtin_trap();  // encode/decode/encode drifted: not byte-exact
  }
  return 0;
}

#ifndef EMSIM_STATS_ACCUMULATOR_H_
#define EMSIM_STATS_ACCUMULATOR_H_

#include <cstdint>
#include <limits>

namespace emsim::stats {

/// Streaming scalar statistics (Welford's algorithm): mean, variance, min,
/// max over an online sequence of observations without storing them.
class Accumulator {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel Welford merge).
  void Merge(const Accumulator& other);

  /// Removes all observations.
  void Reset();

  uint64_t count() const { return count_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Mean of the observations; 0 if empty.
  double Mean() const;

  /// Unbiased sample variance (n-1 denominator); 0 if fewer than 2 samples.
  double Variance() const;

  /// Sample standard deviation.
  double StdDev() const;

  /// Standard error of the mean: stddev / sqrt(n).
  double StdError() const;

  double Min() const { return count_ ? min_ : 0.0; }
  double Max() const { return count_ ? max_ : 0.0; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace emsim::stats

#endif  // EMSIM_STATS_ACCUMULATOR_H_

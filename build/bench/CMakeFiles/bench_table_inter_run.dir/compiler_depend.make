# Empty compiler generated dependencies file for bench_table_inter_run.
# This may be replaced when dependencies are built.

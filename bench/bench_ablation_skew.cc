// Extension: skewed block depletion. The paper (after Kwan & Baer) assumes
// uniformly random depletion; real merges deplete runs unevenly when key
// ranges overlap nonuniformly. This bench sweeps a Zipf depletion skew and
// reports how each strategy degrades.

#include "bench_util.h"
#include "core/config.h"
#include "stats/table.h"

int main() {
  using namespace emsim;
  using core::DepletionKind;
  using core::MergeConfig;
  using core::Strategy;
  using core::SyncMode;
  using stats::Table;

  bench::Banner("Extension A-SKEW: Zipf-skewed depletion",
                "k=25, D=5, N=10, unsynchronized, ample cache. theta=0 is the\n"
                "paper's uniform model. Expected shape: skew concentrates\n"
                "demand on few runs (hence few disks), hurting inter-run\n"
                "concurrency more than intra-run seek amortization.");

  Table table({"zipf theta", "Demand Run Only (s)", "All Disks One Run (s)",
               "ADOR concurrency", "ADOR speedup over DRO"});
  for (double theta : {0.0, 0.3, 0.6, 0.9, 1.2, 1.5}) {
    MergeConfig demand =
        MergeConfig::Paper(25, 5, 10, Strategy::kDemandRunOnly, SyncMode::kUnsynchronized);
    demand.depletion = DepletionKind::kZipf;
    demand.zipf_theta = theta;
    auto demand_result = bench::Run(demand);

    MergeConfig ador =
        MergeConfig::Paper(25, 5, 10, Strategy::kAllDisksOneRun, SyncMode::kUnsynchronized);
    ador.depletion = DepletionKind::kZipf;
    ador.zipf_theta = theta;
    auto ador_result = bench::Run(ador);

    table.AddRow({Table::Cell(theta, 1), bench::TimeCell(demand_result),
                  bench::TimeCell(ador_result),
                  Table::Cell(ador_result.MeanConcurrency(), 3),
                  Table::Cell(demand_result.MeanTotalSeconds() /
                                  ador_result.MeanTotalSeconds(),
                              2)});
  }
  bench::EmitTable("Strategy robustness under depletion skew", table);
  emsim::bench::WriteJsonArtifact("ablation_skew");
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/bench_table_inter_run.dir/bench_table_inter_run.cc.o"
  "CMakeFiles/bench_table_inter_run.dir/bench_table_inter_run.cc.o.d"
  "bench_table_inter_run"
  "bench_table_inter_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_inter_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#!/usr/bin/env python3
"""Incremental clang-tidy runner (curated profile in .clang-tidy,
warnings-as-errors) over every translation unit in the compilation database
that lives under src/ tools/ bench/ or tests/.

A dependency-free replacement for LLVM's run-clang-tidy wrapper, extended
with a per-TU result cache that makes the expensive `clang-analyzer-*`
families affordable in CI: a cold run pays once, every warm run re-analyzes
only the TUs whose *inputs* changed.

Cache design. Each TU's result is stored content-addressed under
--cache-dir, keyed by a SHA-256 over everything that can change the
diagnostics:

  * the cache schema version (bump CACHE_SCHEMA to invalidate the world),
  * `clang-tidy --version` (system headers change with the toolchain),
  * the .clang-tidy configuration file at the source root,
  * the TU's compile command from compile_commands.json,
  * the TU's own bytes, and
  * the bytes of every transitively-included project header (resolved
    against the compile command's -I/-isystem dirs and the includer's own
    directory; headers outside --source-root are covered by the version
    component instead of being hashed).

Editing a header therefore re-keys exactly the TUs that include it; an
untouched tree is a 100% cache hit. The cache directory is safe to persist
across CI runs (actions/cache) — entries are immutable and self-describing,
and a small mtime-based GC keeps the directory bounded.

Shards: TUs are analyzed by a process pool sized to the core count
(--jobs 0). A per-TU timing report (--timing-report) records duration,
cache hit/miss and exit code for every TU, plus aggregate hit ratio and
wall time — CI uploads it as an artifact so the timing budget stays
observable. --warm-budget-seconds fails the run when a *warm* run (hit
ratio >= 0.5) exceeds the budget, keeping the "clang-analyzer needs a CI
timing budget" concern enforced rather than aspirational.

Usage:
  tools/lint/run_clang_tidy.py --build-dir build [--clang-tidy clang-tidy]
      [--source-root .] [--jobs N] [--report out.txt]
      [--cache-dir DIR] [--no-cache] [--timing-report out.json]
      [--warm-budget-seconds N]

Exit status: 0 when clang-tidy is clean on every file (and the budget, if
given, holds), 1 otherwise.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import re
import subprocess
import sys
import time
from pathlib import Path

LINT_DIRS = ("src", "tools", "bench", "tests")

# Bump to invalidate every cache entry (e.g. when the runner's notion of a
# TU's inputs changes).
CACHE_SCHEMA = "2"

# Entries beyond this are GC'd oldest-first; generous — the repo has ~100 TUs,
# so even many branches' worth of keys fit.
CACHE_MAX_ENTRIES = 4096

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+("([^"]+)"|<([^>]+)>)', re.MULTILINE)
INCLUDE_DIR_RE = re.compile(r"(?:^|\s)-(?:I|isystem)\s*(\S+)")


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class DependencyScanner:
    """Resolves the transitive project-header closure of a TU by scanning
    #include directives. Header dep-sets are memoized, so shared headers are
    parsed once per run, not once per includer."""

    def __init__(self, root: Path):
        self.root = root
        self._direct: dict[Path, list] = {}   # file -> [(spec, is_quote)]
        self._text: dict[Path, bytes] = {}

    def read(self, path: Path) -> bytes:
        data = self._text.get(path)
        if data is None:
            try:
                data = path.read_bytes()
            except OSError:
                data = b""
            self._text[path] = data
        return data

    def _direct_includes(self, path: Path):
        cached = self._direct.get(path)
        if cached is None:
            cached = []
            for m in INCLUDE_RE.finditer(self.read(path).decode("utf-8", "replace")):
                if m.group(2) is not None:
                    cached.append((m.group(2), True))
                else:
                    cached.append((m.group(3), False))
            self._direct[path] = cached
        return cached

    def _resolve(self, spec: str, is_quote: bool, includer: Path, include_dirs):
        bases = ([includer.parent] if is_quote else []) + include_dirs
        for base in bases:
            candidate = (base / spec)
            if candidate.is_file():
                candidate = candidate.resolve()
                try:
                    candidate.relative_to(self.root)
                except ValueError:
                    return None  # outside the tree: toolchain header
                return candidate
        return None

    def closure(self, tu: Path, include_dirs) -> list[Path]:
        """Every project file the TU transitively includes (excluding the TU
        itself), sorted for stable hashing."""
        seen: set[Path] = set()
        stack = [tu]
        while stack:
            current = stack.pop()
            for spec, is_quote in self._direct_includes(current):
                target = self._resolve(spec, is_quote, current, include_dirs)
                if target is not None and target not in seen and target != tu:
                    seen.add(target)
                    stack.append(target)
        return sorted(seen)


def include_dirs_of(command: str, directory: Path):
    dirs = []
    for m in INCLUDE_DIR_RE.finditer(command):
        raw = m.group(1).strip('"')
        path = Path(raw)
        if not path.is_absolute():
            path = directory / path
        dirs.append(path)
    return dirs


def tidy_version(clang_tidy: str) -> str:
    try:
        proc = subprocess.run([clang_tidy, "--version"],
                              stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True)
        return proc.stdout.strip()
    except OSError:
        return "unavailable"


def cache_key(version: str, config: bytes, command: str,
              scanner: DependencyScanner, tu: Path, include_dirs) -> str:
    h = hashlib.sha256()
    for part in (CACHE_SCHEMA, version, command):
        h.update(part.encode("utf-8"))
        h.update(b"\0")
    h.update(config)
    h.update(b"\0")
    h.update(scanner.read(tu))
    for dep in scanner.closure(tu, include_dirs):
        h.update(dep.as_posix().encode("utf-8"))
        h.update(b"\0")
        h.update(scanner.read(dep))
    return h.hexdigest()


def cache_load(cache_dir: Path, key: str):
    entry = cache_dir / f"{key}.json"
    try:
        doc = json.loads(entry.read_text(encoding="utf-8"))
        return int(doc["exit"]), str(doc["output"])
    except (OSError, ValueError, KeyError):
        return None


def cache_store(cache_dir: Path, key: str, path: str, code: int, output: str):
    entry = cache_dir / f"{key}.json"
    tmp = entry.with_suffix(".tmp%d" % multiprocessing.current_process().pid)
    tmp.write_text(json.dumps({"file": path, "exit": code, "output": output}),
                   encoding="utf-8")
    tmp.replace(entry)  # atomic: concurrent shards may race on the same key


def cache_gc(cache_dir: Path):
    entries = sorted(cache_dir.glob("*.json"), key=lambda p: p.stat().st_mtime)
    for stale in entries[:-CACHE_MAX_ENTRIES]:
        try:
            stale.unlink()
        except OSError:
            pass


def tidy_one(task):
    """Worker: analyze one TU unless its key is already cached."""
    clang_tidy, build_dir, path, key, cache_dir = task
    start = time.monotonic()
    if cache_dir is not None:
        hit = cache_load(cache_dir, key)
        if hit is not None:
            code, output = hit
            return path, code, output, time.monotonic() - start, True
    try:
        proc = subprocess.run(
            [clang_tidy, "-p", build_dir, "--warnings-as-errors=*", "--quiet", path],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        code, output = proc.returncode, proc.stdout
    except FileNotFoundError:
        return (path, 127, f"run_clang_tidy: {clang_tidy}: no such executable\n",
                time.monotonic() - start, False)
    if cache_dir is not None:
        cache_store(cache_dir, key, path, code, output)
    return path, code, output, time.monotonic() - start, False


def load_database(db_path: Path, root: Path):
    """[(abs file, directory, command)] for every TU under LINT_DIRS."""
    tus = []
    for entry in json.loads(db_path.read_text(encoding="utf-8")):
        path = Path(entry["file"])
        if not path.is_absolute():
            path = Path(entry["directory"]) / path
        path = path.resolve()
        try:
            rel = path.relative_to(root)
        except ValueError:
            continue
        if not (rel.parts and rel.parts[0] in LINT_DIRS):
            continue
        command = entry.get("command")
        if command is None:
            command = " ".join(entry.get("arguments", []))
        tus.append((path, Path(entry["directory"]), command))
    unique = {str(path): (path, directory, command)
              for path, directory, command in tus}
    return [unique[key] for key in sorted(unique)]


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", required=True,
                        help="build tree containing compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--source-root", default=".")
    parser.add_argument("--jobs", type=int, default=0, help="0 = one per CPU")
    parser.add_argument("--report", help="write the aggregated clang-tidy output here")
    parser.add_argument("--cache-dir",
                        help="per-TU result cache (default: BUILD_DIR/tidy-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="analyze every TU regardless of cache state")
    parser.add_argument("--timing-report",
                        help="write a per-TU timing/cache JSON artifact here")
    parser.add_argument("--warm-budget-seconds", type=float, default=0,
                        help="fail a warm run (cache hit ratio >= 0.5) whose "
                             "wall time exceeds this many seconds (0 = off)")
    args = parser.parse_args(argv)

    started = time.monotonic()
    build_dir = Path(args.build_dir).resolve()
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        print(f"run_clang_tidy: {db_path} not found; configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON first", file=sys.stderr)
        return 1
    root = Path(args.source_root).resolve()

    tus = load_database(db_path, root)
    if not tus:
        print("run_clang_tidy: no files under "
              f"{'/'.join(LINT_DIRS)} in the compilation database", file=sys.stderr)
        return 1

    cache_dir = None
    if not args.no_cache:
        cache_dir = Path(args.cache_dir) if args.cache_dir else build_dir / "tidy-cache"
        cache_dir.mkdir(parents=True, exist_ok=True)

    version = tidy_version(args.clang_tidy)
    config_path = root / ".clang-tidy"
    config = config_path.read_bytes() if config_path.is_file() else b""
    scanner = DependencyScanner(root)

    tasks = []
    for path, directory, command in tus:
        key = cache_key(version, config, command, scanner, path,
                        include_dirs_of(command, directory))
        tasks.append((args.clang_tidy, str(build_dir), str(path), key, cache_dir))

    jobs = args.jobs if args.jobs > 0 else (multiprocessing.cpu_count() or 1)
    failures = 0
    hits = 0
    chunks = []
    timings = []
    with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
        for path, code, output, duration, cached in pool.imap_unordered(tidy_one, tasks):
            if code != 0:
                failures += 1
                sys.stdout.write(output)
            hits += cached
            timings.append({"file": path, "exit": code, "cached": cached,
                            "duration_seconds": round(duration, 4)})
            chunks.append(f"==> {path} (exit {code}{', cached' if cached else ''})\n"
                          f"{output}")
    if cache_dir is not None:
        cache_gc(cache_dir)
    if args.report:
        Path(args.report).write_text("".join(chunks), encoding="utf-8")

    wall = time.monotonic() - started
    hit_ratio = hits / len(tasks)
    warm = hit_ratio >= 0.5
    over_budget = (args.warm_budget_seconds > 0 and warm
                   and wall > args.warm_budget_seconds)

    if args.timing_report:
        timings.sort(key=lambda t: t["file"])
        Path(args.timing_report).write_text(json.dumps({
            "tool": "run_clang_tidy",
            "version": 1,
            "jobs": jobs,
            "wall_seconds": round(wall, 3),
            "cache": {
                "enabled": cache_dir is not None,
                "dir": str(cache_dir) if cache_dir is not None else None,
                "hits": hits,
                "misses": len(tasks) - hits,
                "hit_ratio": round(hit_ratio, 4),
            },
            "warm_budget_seconds": args.warm_budget_seconds or None,
            "over_budget": over_budget,
            "files": timings,
        }, indent=2) + "\n", encoding="utf-8")

    status = (f"run_clang_tidy: {len(tasks)} files, {failures} with findings, "
              f"{hits} cached ({hit_ratio:.0%}), {wall:.1f}s wall")
    print(status, file=sys.stderr if failures else sys.stdout)
    if over_budget:
        print(f"run_clang_tidy: warm run exceeded the {args.warm_budget_seconds:.0f}s "
              "budget — the clang-analyzer profile has outgrown its CI allowance; "
              "trim checks or raise the budget deliberately", file=sys.stderr)
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

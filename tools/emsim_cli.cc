// emsim_cli — run merge-phase simulations from the command line or from an
// experiment spec file, emitting a table or CSV.
//
//   # single configuration from flags
//   $ emsim_cli --runs 25 --disks 5 --n 10 --strategy all-disks-one-run
//
//   # batch of experiments from a spec file (see workload/experiment_spec.h)
//   $ emsim_cli --spec experiments.ini --format csv
//
//   # machine-readable export for CI / regression diffing (docs/USAGE.md)
//   $ emsim_cli --runs 25 --disks 5 --n 10 --json results.json

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/experiment.h"
#include "core/result.h"
#include "core/result_json.h"
#include "stats/table.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/str.h"
#include "workload/experiment_spec.h"

using namespace emsim;

namespace {

void AddResultRow(stats::Table& table, const std::string& name,
                  const core::MergeConfig& cfg, const core::ExperimentResult& result) {
  auto ci = result.TotalSecondsCi();
  const core::MergeResult& first = result.trials.front();
  table.AddRow({name, core::StrategyName(cfg.strategy),
                StrFormat("%d", cfg.prefetch_depth), core::SyncModeName(cfg.sync),
                StrFormat("%lld", static_cast<long long>(cfg.EffectiveCacheBlocks())),
                StrFormat("%.2f", ci.mean), StrFormat("%.2f", ci.half_width),
                stats::Table::Cell(result.MeanSuccessRatio(), 3),
                stats::Table::Cell(result.MeanConcurrency(), 2),
                stats::Table::Cell(first.stall_ms.Mean(), 2),
                StrFormat("%llu", static_cast<unsigned long long>(first.stall_ms.count()))});
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("emsim_cli");
  int runs = 25;
  int disks = 5;
  int64_t blocks = 1000;
  int n = 10;
  int64_t cache = core::MergeConfig::kAutoCache;
  double cpu_ms = 0.0;
  double zipf_theta = 0.0;
  int trials = 5;
  int64_t seed = 1;
  std::string strategy = "all-disks-one-run";
  std::string sync = "unsync";
  std::string admission = "conservative";
  std::string victim = "random";
  std::string depletion = "uniform";
  std::string write_traffic = "none";
  std::string spec_path;
  std::string format = "table";
  std::string json_path;
  bool collect_metrics = false;
  bool help = false;
  bool print_spec = false;
  // Fault injection (docs/ROBUSTNESS.md). Defaults leave injection off, which
  // keeps every artifact byte-identical to the fault-free schema.
  double fault_media_error_rate = 0.0;
  double fault_spike_rate = 0.0;
  double fault_spike_ms = 50.0;
  int fault_slow_disk = -1;
  double fault_slow_factor = 4.0;
  double fault_slow_start_ms = 0.0;
  double fault_slow_end_ms = -1.0;
  int fault_stop_disk = -1;
  double fault_stop_start_ms = 0.0;
  double fault_stop_end_ms = -1.0;
  int64_t fault_seed = 0;
  int fault_max_retries = 4;
  double fault_timeout_ms = 2000.0;
  double fault_backoff_ms = 20.0;
  double fault_backoff_mult = 2.0;
  int64_t max_sim_events = 0;
  double max_wall_ms = 0.0;

  flags.AddInt("runs", &runs, "number of sorted runs (k)");
  flags.AddInt("disks", &disks, "number of input disks (D)");
  flags.AddInt64("blocks", &blocks, "blocks per run");
  flags.AddInt("n", &n, "prefetch depth (N)");
  flags.AddInt64("cache", &cache, "cache size in blocks (-1 = auto)");
  flags.AddDouble("cpu_ms", &cpu_ms, "CPU time to merge one block (ms)");
  flags.AddDouble("zipf_theta", &zipf_theta, "depletion skew for --depletion zipf");
  flags.AddInt("trials", &trials, "trials to average");
  flags.AddInt64("seed", &seed, "base RNG seed");
  flags.AddString("strategy", &strategy, "demand-run-only | all-disks-one-run");
  flags.AddString("sync", &sync, "sync | unsync");
  flags.AddString("admission", &admission, "conservative | greedy");
  flags.AddString("victim", &victim,
                  "random | round-robin | fewest-buffered | nearest-head");
  flags.AddString("depletion", &depletion, "uniform | zipf");
  flags.AddString("write_traffic", &write_traffic, "none | separate | shared");
  flags.AddString("spec", &spec_path, "experiment spec file (overrides other flags)");
  flags.AddString("format", &format, "table | csv");
  flags.AddString("json", &json_path,
                  "also write a schema-stable JSON document here ('-' = stdout)");
  flags.AddBool("metrics", &collect_metrics,
                "collect the full metrics registry into the JSON export");
  flags.AddBool("print_spec", &print_spec, "echo each experiment as spec syntax");
  flags.AddDouble("fault_media_error_rate", &fault_media_error_rate,
                  "P(injected media error) per read request");
  flags.AddDouble("fault_spike_rate", &fault_spike_rate,
                  "P(latency spike) per request");
  flags.AddDouble("fault_spike_ms", &fault_spike_ms, "extra latency per spike (ms)");
  flags.AddInt("fault_slow_disk", &fault_slow_disk, "fail-slow disk id (-1 = none)");
  flags.AddDouble("fault_slow_factor", &fault_slow_factor,
                  "fail-slow service-time multiplier");
  flags.AddDouble("fault_slow_start_ms", &fault_slow_start_ms, "fail-slow window start");
  flags.AddDouble("fault_slow_end_ms", &fault_slow_end_ms,
                  "fail-slow window end (-1 = forever)");
  flags.AddInt("fault_stop_disk", &fault_stop_disk, "fail-stop disk id (-1 = none)");
  flags.AddDouble("fault_stop_start_ms", &fault_stop_start_ms, "fail-stop outage start");
  flags.AddDouble("fault_stop_end_ms", &fault_stop_end_ms,
                  "fail-stop outage end (-1 = forever)");
  flags.AddInt64("fault_seed", &fault_seed,
                 "fault RNG seed (0 = derive from --seed)");
  flags.AddInt("fault_max_retries", &fault_max_retries, "retries before a span fails");
  flags.AddDouble("fault_timeout_ms", &fault_timeout_ms,
                  "per-attempt I/O timeout (0 = none)");
  flags.AddDouble("fault_backoff_ms", &fault_backoff_ms, "base retry backoff (ms)");
  flags.AddDouble("fault_backoff_mult", &fault_backoff_mult, "backoff multiplier");
  flags.AddInt64("max_sim_events", &max_sim_events,
                 "per-trial simulated-event deadline (0 = unlimited)");
  flags.AddDouble("max_wall_ms", &max_wall_ms,
                  "per-trial wall-clock deadline in ms (0 = unlimited)");
  flags.AddBool("help", &help, "show usage");

  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(), flags.Usage().c_str());
    return 2;
  }
  if (help) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }

  std::vector<workload::ExperimentSpec> specs;
  if (!spec_path.empty()) {
    auto loaded = workload::LoadExperimentSpec(spec_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    specs = *std::move(loaded);
  } else {
    workload::ExperimentSpec spec;
    spec.name = "cli";
    spec.trials = trials;
    core::MergeConfig& cfg = spec.config;
    cfg.num_runs = runs;
    cfg.num_disks = disks;
    cfg.blocks_per_run = blocks;
    cfg.prefetch_depth = n;
    cfg.cache_blocks = cache;
    cfg.cpu_ms_per_block = cpu_ms;
    cfg.zipf_theta = zipf_theta;
    cfg.seed = static_cast<uint64_t>(seed);
    auto parsed_strategy = core::ParseStrategy(strategy);
    auto parsed_sync = core::ParseSyncMode(sync);
    auto parsed_admission = core::ParseAdmissionPolicy(admission);
    auto parsed_victim = core::ParseVictimPolicy(victim);
    auto parsed_depletion = core::ParseDepletionKind(depletion);
    auto parsed_write = core::ParseWriteTraffic(write_traffic);
    for (const Status& s :
         {parsed_strategy.status(), parsed_sync.status(), parsed_admission.status(),
          parsed_victim.status(), parsed_depletion.status(), parsed_write.status()}) {
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 2;
      }
    }
    cfg.strategy = *parsed_strategy;
    cfg.sync = *parsed_sync;
    cfg.admission = *parsed_admission;
    cfg.victim = *parsed_victim;
    cfg.depletion = *parsed_depletion;
    cfg.write_traffic = *parsed_write;
    cfg.fault.media_error_rate = fault_media_error_rate;
    cfg.fault.latency_spike_rate = fault_spike_rate;
    cfg.fault.latency_spike_ms = fault_spike_ms;
    cfg.fault.fail_slow_disk = fault_slow_disk;
    cfg.fault.fail_slow_factor = fault_slow_factor;
    cfg.fault.fail_slow_start_ms = fault_slow_start_ms;
    cfg.fault.fail_slow_end_ms = fault_slow_end_ms;
    cfg.fault.fail_stop_disk = fault_stop_disk;
    cfg.fault.fail_stop_start_ms = fault_stop_start_ms;
    cfg.fault.fail_stop_end_ms = fault_stop_end_ms;
    cfg.fault.seed = static_cast<uint64_t>(fault_seed);
    cfg.fault.retry.max_retries = fault_max_retries;
    cfg.fault.retry.timeout_ms = fault_timeout_ms;
    cfg.fault.retry.backoff_base_ms = fault_backoff_ms;
    cfg.fault.retry.backoff_multiplier = fault_backoff_mult;
    Status valid = cfg.Validate();
    if (!valid.ok()) {
      std::fprintf(stderr, "invalid configuration: %s\n", valid.ToString().c_str());
      return 2;
    }
    specs.push_back(std::move(spec));
  }

  stats::Table table({"experiment", "strategy", "N", "sync", "cache", "time_s",
                      "ci95_s", "success", "concurrency", "stall_ms", "stalls"});
  // Results owned here so the JSON export can reference all of them at once.
  std::vector<std::unique_ptr<core::ExperimentResult>> results;
  std::vector<core::NamedExperiment> named;
  core::TrialDeadline deadline;
  deadline.max_sim_events = static_cast<uint64_t>(max_sim_events);
  deadline.max_wall_ms = max_wall_ms;
  for (auto& spec : specs) {
    if (print_spec) {
      std::printf("%s\n", workload::ToSpec(spec).c_str());
    }
    spec.config.collect_metrics = collect_metrics;
    auto result = std::make_unique<core::ExperimentResult>(
        core::RunTrials(spec.config, spec.trials, deadline));
    AddResultRow(table, spec.name, spec.config, *result);
    named.push_back(core::NamedExperiment{spec.name, spec.config, result.get()});
    results.push_back(std::move(result));
  }
  // With --json -, stdout belongs to the JSON document (so it can be piped
  // into jq and friends); the human table moves to stderr.
  std::fprintf(json_path == "-" ? stderr : stdout, "%s",
               format == "csv" ? table.ToCsv().c_str() : table.ToString().c_str());
  if (!json_path.empty()) {
    std::string doc = core::ExperimentSetToJson(named);
    if (json_path == "-") {
      std::printf("%s", doc.c_str());
    } else {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
        return 1;
      }
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fclose(f);
    }
  }
  return 0;
}

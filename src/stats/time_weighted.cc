#include "stats/time_weighted.h"

namespace emsim::stats {

double TimeWeighted::Average() const {
  if (total_time_ <= 0) {
    return 0.0;
  }
  return weighted_sum_ / total_time_;
}

double TimeWeighted::AverageWhilePositive() const {
  if (positive_time_ <= 0) {
    return 0.0;
  }
  return positive_weighted_sum_ / positive_time_;
}

}  // namespace emsim::stats

// Cross-module integration: the full pipeline from record generation through
// real external sorting to trace-driven timing simulation, plus end-to-end
// agreement between the analytic models and the discrete-event simulator.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/model_params.h"
#include "analysis/predictor.h"
#include "core/config.h"
#include "core/experiment.h"
#include "core/merge_simulator.h"
#include "extsort/block_device.h"
#include "extsort/merger.h"
#include "extsort/record.h"
#include "extsort/run_formation.h"
#include "workload/record_generator.h"

namespace emsim {
namespace {

using core::MergeConfig;
using core::Strategy;
using core::SyncMode;

/// Sorts real records and returns (trace, per-run block lengths).
std::pair<std::vector<int>, std::vector<int64_t>> RealMergeTrace(
    size_t n, workload::KeyDistribution dist,
    extsort::RunFormationStrategy strategy, size_t memory_records) {
  workload::RecordGeneratorOptions gen_opt;
  gen_opt.distribution = dist;
  gen_opt.seed = 404;
  workload::RecordGenerator gen(gen_opt);
  std::vector<extsort::Record> input;
  input.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    input.push_back({gen.NextKey(), i});
  }
  extsort::MemoryBlockDevice scratch(1 << 14, 4096);
  extsort::RunFormationOptions rf;
  rf.memory_records = memory_records;
  rf.strategy = strategy;
  auto runs = extsort::FormRuns(input, &scratch, rf);
  EXPECT_TRUE(runs.ok());
  auto outcome = extsort::ExtractDepletionTrace(&scratch, runs->runs);
  EXPECT_TRUE(outcome.ok());
  return {outcome->depletion_trace, outcome->run_blocks};
}

TEST(PipelineTest, RealTraceDrivesSimulator) {
  auto [trace, run_blocks] =
      RealMergeTrace(51000, workload::KeyDistribution::kUniform,
                     extsort::RunFormationStrategy::kLoadSort, /*memory_records=*/5100);
  ASSERT_EQ(run_blocks.size(), 10u);

  MergeConfig cfg;
  cfg.num_runs = static_cast<int>(run_blocks.size());
  cfg.num_disks = 5;
  cfg.run_lengths = run_blocks;
  cfg.prefetch_depth = 5;
  cfg.strategy = Strategy::kAllDisksOneRun;
  cfg.sync = SyncMode::kUnsynchronized;
  cfg.depletion = core::DepletionKind::kTrace;
  cfg.trace = trace;
  cfg.check_invariants = true;
  ASSERT_TRUE(cfg.Validate().ok()) << cfg.Validate().ToString();

  auto ador = core::SimulateMerge(cfg);
  ASSERT_TRUE(ador.ok());
  EXPECT_EQ(ador->blocks_merged, static_cast<int64_t>(trace.size()));

  cfg.strategy = Strategy::kDemandRunOnly;
  cfg.cache_blocks = MergeConfig::kAutoCache;
  auto demand = core::SimulateMerge(cfg);
  ASSERT_TRUE(demand.ok());

  // Inter-run prefetching should beat intra-run on a real uniform-key merge
  // too, not just under the random-depletion model.
  EXPECT_LT(ador->total_ms, demand->total_ms);
  EXPECT_GT(ador->avg_concurrency, demand->avg_concurrency);
}

TEST(PipelineTest, ReplacementSelectionTraceRunsWithUnequalRuns) {
  auto [trace, run_blocks] =
      RealMergeTrace(30000, workload::KeyDistribution::kUniform,
                     extsort::RunFormationStrategy::kReplacementSelection,
                     /*memory_records=*/2000);
  ASSERT_GT(run_blocks.size(), 1u);
  // Replacement selection produces unequal runs.
  auto [min_it, max_it] = std::minmax_element(run_blocks.begin(), run_blocks.end());
  EXPECT_NE(*min_it, *max_it);

  MergeConfig cfg;
  cfg.num_runs = static_cast<int>(run_blocks.size());
  cfg.num_disks = 3;
  cfg.run_lengths = run_blocks;
  cfg.prefetch_depth = 4;
  cfg.strategy = Strategy::kAllDisksOneRun;
  cfg.sync = SyncMode::kUnsynchronized;
  cfg.depletion = core::DepletionKind::kTrace;
  cfg.trace = trace;
  cfg.check_invariants = true;
  ASSERT_TRUE(cfg.Validate().ok()) << cfg.Validate().ToString();
  auto result = core::SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->blocks_merged, static_cast<int64_t>(trace.size()));
}

TEST(PipelineTest, SortedDataDepletesSequentially) {
  // Disjoint key ranges (load-sort over sorted input) deplete run by run —
  // the antithesis of the random model; the pipeline must still work.
  workload::RecordGeneratorOptions gen_opt;
  gen_opt.distribution = workload::KeyDistribution::kNearlySorted;
  gen_opt.nearly_sorted_window = 0;  // Exactly sorted.
  workload::RecordGenerator gen(gen_opt);
  std::vector<extsort::Record> input;
  for (size_t i = 0; i < 10000; ++i) {
    input.push_back({gen.NextKey(), i});
  }
  extsort::MemoryBlockDevice scratch(1 << 14, 4096);
  extsort::RunFormationOptions rf;
  rf.memory_records = 2500;
  auto runs = extsort::FormRuns(input, &scratch, rf);
  ASSERT_TRUE(runs.ok());
  auto outcome = extsort::ExtractDepletionTrace(&scratch, runs->runs);
  ASSERT_TRUE(outcome.ok());
  // The trace must be a concatenation: run i fully before run i+1.
  const auto& trace = outcome->depletion_trace;
  EXPECT_TRUE(std::is_sorted(trace.begin(), trace.end()));
}

TEST(AgreementTest, AnalyticPredictionsTrackSimulation) {
  // The end-to-end validation table of EXPERIMENTS.md, in test form.
  struct Case {
    int k, d, n;
    Strategy strategy;
    SyncMode sync;
    analysis::Scenario scenario;
    double tolerance;  // Relative.
  };
  const Case cases[] = {
      {25, 1, 1, Strategy::kDemandRunOnly, SyncMode::kUnsynchronized,
       analysis::Scenario::kNoPrefetchSingleDisk, 0.01},
      {50, 1, 1, Strategy::kDemandRunOnly, SyncMode::kUnsynchronized,
       analysis::Scenario::kNoPrefetchSingleDisk, 0.01},
      {25, 1, 10, Strategy::kDemandRunOnly, SyncMode::kUnsynchronized,
       analysis::Scenario::kIntraRunSingleDisk, 0.01},
      {25, 5, 1, Strategy::kDemandRunOnly, SyncMode::kUnsynchronized,
       analysis::Scenario::kNoPrefetchMultiDisk, 0.01},
      {25, 5, 10, Strategy::kDemandRunOnly, SyncMode::kSynchronized,
       analysis::Scenario::kIntraRunMultiDiskSync, 0.01},
      {25, 5, 10, Strategy::kAllDisksOneRun, SyncMode::kSynchronized,
       analysis::Scenario::kInterRunSync, 0.02},
  };
  for (const Case& c : cases) {
    MergeConfig cfg = MergeConfig::Paper(c.k, c.d, c.n, c.strategy, c.sync);
    auto result = core::RunTrials(cfg, 3);
    analysis::ModelParams p = analysis::ModelParams::Paper(c.k, c.d);
    analysis::Prediction pred = analysis::Predict(p, c.scenario, c.n);
    EXPECT_NEAR(result.total_ms.Mean(), pred.total_ms, pred.total_ms * c.tolerance)
        << analysis::ScenarioName(c.scenario) << " k=" << c.k << " D=" << c.d
        << " N=" << c.n;
  }
}

TEST(AgreementTest, UnsyncAsymptoteBracketsSimulation) {
  // Unsynchronized intra-run at finite N sits between the asymptotic model
  // and the synchronized time (the paper reports the same bracketing).
  MergeConfig cfg =
      MergeConfig::Paper(25, 5, 30, Strategy::kDemandRunOnly, SyncMode::kUnsynchronized);
  auto result = core::RunTrials(cfg, 3);
  analysis::ModelParams p = analysis::ModelParams::Paper(25, 5);
  double asymptote =
      analysis::Predict(p, analysis::Scenario::kIntraRunMultiDiskUnsync, 30).total_ms;
  double sync =
      analysis::Predict(p, analysis::Scenario::kIntraRunMultiDiskSync, 30).total_ms;
  EXPECT_GT(result.total_ms.Mean(), asymptote);
  EXPECT_LT(result.total_ms.Mean(), sync);
}

TEST(AgreementTest, InterRunApproachesTransferBound) {
  // Paper Fig. 3.5: with ample cache and growing N the inter-run time tends
  // to B*T/D (12.8 s for k=25, D=5) but needs N >> 10 to get close.
  analysis::ModelParams p = analysis::ModelParams::Paper(25, 5);
  double bound =
      analysis::Predict(p, analysis::Scenario::kInterRunUnsyncBound, 1).total_ms;
  MergeConfig cfg =
      MergeConfig::Paper(25, 5, 50, Strategy::kAllDisksOneRun, SyncMode::kUnsynchronized);
  auto result = core::RunTrials(cfg, 3);
  EXPECT_GT(result.total_ms.Mean(), bound);
  EXPECT_LT(result.total_ms.Mean(), bound * 1.15);  // Within 15% at N=50.
}

TEST(AgreementTest, SuperlinearSpeedupOverSingleDisk) {
  // The paper's headline: prefetching + D disks yields superlinear speedup
  // over the single-disk no-prefetch baseline (seek/latency amortization
  // compounds with concurrency).
  MergeConfig base =
      MergeConfig::Paper(25, 1, 1, Strategy::kDemandRunOnly, SyncMode::kUnsynchronized);
  MergeConfig best =
      MergeConfig::Paper(25, 5, 10, Strategy::kAllDisksOneRun, SyncMode::kUnsynchronized);
  auto base_result = core::RunTrials(base, 3);
  auto best_result = core::RunTrials(best, 3);
  double speedup = base_result.total_ms.Mean() / best_result.total_ms.Mean();
  EXPECT_GT(speedup, 5.0) << "speedup should exceed the disk count (superlinear)";
}

}  // namespace
}  // namespace emsim

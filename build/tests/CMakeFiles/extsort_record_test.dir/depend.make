# Empty dependencies file for extsort_record_test.
# This may be replaced when dependencies are built.

#include "sim/resource.h"

#include "sim/simulation.h"
#include "util/check.h"

namespace emsim::sim {

Resource::Resource(Simulation* sim, int num_servers)
    : sim_(sim), num_servers_(num_servers), sem_(sim, num_servers) {
  EMSIM_CHECK(num_servers >= 1);
  busy_stat_.Update(sim_->Now(), 0.0);
}

void Resource::NoteAcquired() {
  ++busy_;
  EMSIM_DCHECK(busy_ <= num_servers_);
  busy_stat_.Update(sim_->Now(), busy_);
}

bool Resource::TryAcquire() {
  if (sem_.TryAcquire()) {
    NoteAcquired();
    return true;
  }
  return false;
}

void Resource::Release() {
  EMSIM_CHECK(busy_ > 0);
  ++completions_;
  --busy_;
  busy_stat_.Update(sim_->Now(), busy_);
  sem_.Release();
}

double Resource::MeanBusyServers() const { return busy_stat_.Average(); }

double Resource::BusyFraction() const {
  double total = busy_stat_.TotalTime();
  if (total <= 0) {
    return 0.0;
  }
  return busy_stat_.PositiveTime() / total;
}

void Resource::FlushStats() { busy_stat_.Flush(sim_->Now()); }

}  // namespace emsim::sim

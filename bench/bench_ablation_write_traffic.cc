// Extension: quantifying the paper's separate-write-disks assumption. The
// paper sends merge output to "a separate set of disks" and excludes the
// traffic; this bench measures (a) how many dedicated write disks that
// takes before writes stop mattering, and (b) the contention cost if the
// output shares the input disks instead.

#include "bench_util.h"
#include "core/config.h"
#include "stats/table.h"
#include "util/str.h"

int main() {
  using namespace emsim;
  using core::MergeConfig;
  using core::Strategy;
  using core::SyncMode;
  using core::WriteTraffic;
  using stats::Table;

  bench::Banner(
      "Extension A-WRITE: write traffic",
      "k=25, D=5, N=10, unsynchronized, write-behind in 10-block batches.\n"
      "Expected shape: enough separate write disks reproduce the paper's\n"
      "no-write times (validating its assumption); a single write arm\n"
      "bottlenecks the merge; sharing the input disks costs ~the write\n"
      "service time on the critical path.");

  for (auto strategy : {Strategy::kDemandRunOnly, Strategy::kAllDisksOneRun}) {
    Table table({"write model", "time (s)", "vs paper model", "write stalls",
                 "drain (ms)"});
    MergeConfig cfg = MergeConfig::Paper(25, 5, 10, strategy, SyncMode::kUnsynchronized);
    auto baseline = bench::Run(cfg);
    table.AddRow({"none (paper)", bench::TimeCell(baseline), "1.00x", "0", "0"});

    struct Variant {
      const char* name;
      WriteTraffic traffic;
      int disks;
    };
    const Variant variants[] = {
        {"separate, 1 write disk", WriteTraffic::kSeparateDisks, 1},
        {"separate, 2 write disks", WriteTraffic::kSeparateDisks, 2},
        {"separate, 5 write disks", WriteTraffic::kSeparateDisks, 5},
        {"shared with input disks", WriteTraffic::kSharedDisks, 0},
    };
    for (const Variant& v : variants) {
      MergeConfig wcfg = cfg;
      wcfg.write_traffic = v.traffic;
      wcfg.num_write_disks = v.disks;
      auto result = bench::Run(wcfg);
      const auto& trial = result.trials.front();
      table.AddRow({v.name, bench::TimeCell(result),
                    StrFormat("%.2fx", result.MeanTotalSeconds() /
                                           baseline.MeanTotalSeconds()),
                    StrFormat("%llu", static_cast<unsigned long long>(trial.write_stalls)),
                    Table::Cell(trial.write_drain_ms, 1)});
    }
    bench::EmitTable(strategy == Strategy::kDemandRunOnly ? "Demand Run Only"
                                                          : "All Disks One Run",
                     table);
  }
  emsim::bench::WriteJsonArtifact("ablation_write_traffic");
  return 0;
}

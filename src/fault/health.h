#ifndef EMSIM_FAULT_HEALTH_H_
#define EMSIM_FAULT_HEALTH_H_

#include <cstdint>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace emsim::fault {

/// Per-disk health bookkeeping driven by observed request outcomes. The I/O
/// retry driver reports every failure/success; prefetch planners consult
/// `Usable()` so the inter-run fan-out can skip disks that are currently
/// misbehaving (partial-batch admission) instead of serializing every batch
/// behind a straggler.
///
/// Policy: a disk that fails `quarantine_after_failures` consecutive attempts
/// is quarantined for `quarantine_window_ms` of simulated time (each further
/// failure extends the window); a success clears the streak. A disk marked
/// dead (permanent failure) never becomes usable again. All state is plain
/// deterministic arithmetic on simulated time — no randomness, no wall clock.
///
/// Thread safety: internally synchronized. Today each simulation owns its
/// tracker exclusively, but the capacity-planning-daemon direction (many
/// concurrent clients sharing health state for real devices) wants the class
/// safe by construction, and it sits nowhere near the perf-smoke-gated hot
/// loops — the lock is uncontended in every current caller.
class HealthTracker {
 public:
  struct Options {
    int quarantine_after_failures = 2;
    double quarantine_window_ms = 500.0;
  };

  explicit HealthTracker(int num_disks) : HealthTracker(num_disks, Options()) {}
  HealthTracker(int num_disks, Options options);

  /// Records a failed attempt on `disk` at simulated time `now`.
  void NoteFailure(int disk, double now) EMSIM_EXCLUDES(mu_);

  /// Records a successful completion on `disk`; ends its failure streak.
  void NoteSuccess(int disk) EMSIM_EXCLUDES(mu_);

  /// Permanently retires `disk` (retries exhausted / fail-stop observed).
  void MarkDead(int disk) EMSIM_EXCLUDES(mu_);

  /// True when planners may target `disk` at simulated time `now`.
  bool Usable(int disk, double now) const EMSIM_EXCLUDES(mu_);

  bool Dead(int disk) const EMSIM_EXCLUDES(mu_);

  /// Number of disks not usable at `now` (quarantined or dead).
  int DegradedCount(double now) const EMSIM_EXCLUDES(mu_);

  int num_disks() const { return num_disks_; }
  uint64_t quarantine_events() const EMSIM_EXCLUDES(mu_);
  /// Total simulated time scheduled as quarantine windows (overlaps merged).
  double quarantine_ms() const EMSIM_EXCLUDES(mu_);

 private:
  struct DiskHealth {
    int consecutive_failures = 0;
    double quarantine_until = 0.0;
    bool dead = false;
  };

  bool UsableLocked(int disk, double now) const EMSIM_REQUIRES(mu_);

  const Options options_;
  const int num_disks_;
  mutable util::Mutex mu_;
  std::vector<DiskHealth> disks_ EMSIM_GUARDED_BY(mu_);
  uint64_t quarantine_events_ EMSIM_GUARDED_BY(mu_) = 0;
  double quarantine_ms_ EMSIM_GUARDED_BY(mu_) = 0.0;
};

}  // namespace emsim::fault

#endif  // EMSIM_FAULT_HEALTH_H_

// Statistical validation: the arm movements produced by random demand
// fetches over a contiguous run layout follow the Kwan-Baer seek-distance
// distribution that every formula in the paper builds on.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/seek_distribution.h"
#include "disk/disk_params.h"
#include "disk/geometry.h"
#include "disk/layout.h"
#include "disk/mechanism.h"
#include "util/rng.h"

namespace emsim {
namespace {

struct SeekSample {
  std::vector<double> pmf;   // Empirical, indexed by run distance.
  double mean_cylinders = 0;
};

/// Simulates `steps` random demand fetches (one block each, like the
/// Kwan-Baer baseline) on a single disk holding `k` contiguous runs and
/// returns the empirical run-distance PMF.
SeekSample SampleSeeks(int k, int64_t blocks_per_run, int steps, uint64_t seed) {
  disk::RunLayout layout(disk::RunLayout::Options{k, 1, blocks_per_run, disk::Geometry{},
                                                  disk::RunPlacement::kRoundRobin, {}});
  disk::DiskParams params;
  params.rotation = disk::RotationalLatencyModel::kFixedMean;
  disk::Mechanism mech(params);
  Rng rng(seed);
  std::vector<int64_t> next(static_cast<size_t>(k), 0);
  double m = layout.RunLengthCylinders();

  SeekSample sample;
  sample.pmf.assign(static_cast<size_t>(k), 0.0);
  double total_cylinders = 0;
  for (int step = 0; step < steps; ++step) {
    int run = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(k)));
    int64_t offset = next[static_cast<size_t>(run)];
    next[static_cast<size_t>(run)] = (offset + 1) % blocks_per_run;  // Wrap: steady state.
    disk::AccessCost cost = mech.Access(layout.LocalBlock(run, offset), 1, rng);
    total_cylinders += static_cast<double>(cost.seek_cylinders);
    int run_distance =
        static_cast<int>(std::lround(static_cast<double>(cost.seek_cylinders) / m));
    if (run_distance >= k) {
      run_distance = k - 1;
    }
    sample.pmf[static_cast<size_t>(run_distance)] += 1.0;
  }
  for (double& p : sample.pmf) {
    p /= steps;
  }
  sample.mean_cylinders = total_cylinders / steps;
  return sample;
}

TEST(SeekValidationTest, MeanSeekMatchesKwanBaer) {
  for (int k : {10, 25, 50}) {
    SeekSample sample = SampleSeeks(k, 1000, 200000, /*seed=*/k);
    analysis::SeekDistribution dist(k);
    double m = 1000.0 / 104.0;
    double expect = m * dist.ExpectedMovesExact();
    EXPECT_NEAR(sample.mean_cylinders, expect, expect * 0.02) << "k=" << k;
  }
}

TEST(SeekValidationTest, RunDistancePmfMatchesWithinTotalVariation) {
  const int k = 25;
  SeekSample sample = SampleSeeks(k, 1000, 400000, /*seed=*/99);
  analysis::SeekDistribution dist(k);
  double tv = 0;
  for (int i = 0; i < k; ++i) {
    tv += std::fabs(sample.pmf[static_cast<size_t>(i)] - dist.Pmf(i));
  }
  tv /= 2;
  EXPECT_LT(tv, 0.05);  // Quantization blurs bins by < a run; 5% TV bound.
  // Spot-check the two structural features: the P(0) = 1/k atom and the
  // linear decay tail.
  EXPECT_NEAR(sample.pmf[0], 1.0 / k, 0.015);
  EXPECT_GT(sample.pmf[2], sample.pmf[k - 2]);
}

TEST(SeekValidationTest, MultiDiskSeeksShrinkByDiskCount) {
  // The multi-disk result behind eq. 3: per-disk seek distance scales with
  // the runs on that disk (k/D), so doubling D halves the mean seek.
  auto mean_for = [](int k, int d) {
    disk::RunLayout layout(disk::RunLayout::Options{k, d, 1000, disk::Geometry{},
                                                    disk::RunPlacement::kRoundRobin, {}});
    disk::DiskParams params;
    params.rotation = disk::RotationalLatencyModel::kFixedMean;
    std::vector<disk::Mechanism> mechs(static_cast<size_t>(d),
                                       disk::Mechanism(params));
    Rng rng(7);
    std::vector<int64_t> next(static_cast<size_t>(k), 0);
    double total = 0;
    const int steps = 100000;
    for (int i = 0; i < steps; ++i) {
      int run = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(k)));
      int64_t offset = next[static_cast<size_t>(run)];
      next[static_cast<size_t>(run)] = (offset + 1) % 1000;
      auto& mech = mechs[static_cast<size_t>(layout.DiskOf(run))];
      total += static_cast<double>(
          mech.Access(layout.LocalBlock(run, offset), 1, rng).seek_cylinders);
    }
    return total / steps;
  };
  double d1 = mean_for(50, 1);
  double d5 = mean_for(50, 5);
  double d10 = mean_for(50, 10);
  EXPECT_NEAR(d5, d1 / 5, d1 / 5 * 0.1);
  EXPECT_NEAR(d10, d1 / 10, d1 / 10 * 0.1);
}

}  // namespace
}  // namespace emsim

file(REMOVE_RECURSE
  "CMakeFiles/bench_merge_passes.dir/bench_merge_passes.cc.o"
  "CMakeFiles/bench_merge_passes.dir/bench_merge_passes.cc.o.d"
  "bench_merge_passes"
  "bench_merge_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_merge_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

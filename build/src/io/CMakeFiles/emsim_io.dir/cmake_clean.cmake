file(REMOVE_RECURSE
  "CMakeFiles/emsim_io.dir/planner.cc.o"
  "CMakeFiles/emsim_io.dir/planner.cc.o.d"
  "CMakeFiles/emsim_io.dir/run_state.cc.o"
  "CMakeFiles/emsim_io.dir/run_state.cc.o.d"
  "CMakeFiles/emsim_io.dir/victim_chooser.cc.o"
  "CMakeFiles/emsim_io.dir/victim_chooser.cc.o.d"
  "libemsim_io.a"
  "libemsim_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsim_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Reproduces Figure 3.5 (a), (b), (c): total execution time vs cache size
// for inter-run prefetching ("All Disks One Run") at N = 1, 5, 10, with
// unsynchronized I/O. The asymptote of each curve corresponds to a success
// ratio of 1; the x ranges match the paper's axes (1200 / 1600 / 3500).

#include <cstdint>
#include <string>

#include "bench_util.h"
#include "core/config.h"
#include "stats/series.h"
#include "util/str.h"
#include "workload/paper_configs.h"

namespace emsim {
namespace {

using core::MergeConfig;
using core::Strategy;
using core::SyncMode;

void Panel(int k, int d) {
  stats::Figure fig(
      StrFormat("Figure 3.5: Execution Time vs Cache Size: All Disks One Run "
                "(%d runs, %d disks)",
                k, d),
      "Cache Size (blocks)", "Execution Time (s)");
  for (int n : {1, 5, 10}) {
    stats::Series& series = fig.AddSeries("N=" + std::to_string(n));
    for (int64_t c : workload::CacheSweep(k, d)) {
      MergeConfig cfg =
          MergeConfig::Paper(k, d, n, Strategy::kAllDisksOneRun, SyncMode::kUnsynchronized);
      cfg.cache_blocks = c;
      auto result = bench::Run(cfg);
      auto ci = result.TotalSecondsCi();
      series.Add(static_cast<double>(c), ci.mean, ci.half_width);
    }
  }
  bench::EmitFigure(fig);
}

}  // namespace
}  // namespace emsim

int main() {
  emsim::bench::Banner(
      "Figure 3.5",
      "Execution time vs cache size: All Disks One Run, unsynchronized,\n"
      "N in {1,5,10}. Expected shape: every curve falls to an asymptote\n"
      "(success ratio 1); larger N needs a larger cache but reaches a lower\n"
      "asymptote; at small caches small N wins (the paper's N tradeoff).");
  emsim::Panel(25, 5);
  emsim::Panel(50, 5);
  emsim::Panel(50, 10);
  emsim::bench::WriteJsonArtifact("fig35_cache_size");
  return 0;
}

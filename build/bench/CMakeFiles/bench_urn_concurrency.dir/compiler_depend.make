# Empty compiler generated dependencies file for bench_urn_concurrency.
# This may be replaced when dependencies are built.

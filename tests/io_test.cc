#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/block_cache.h"
#include "disk/geometry.h"
#include "disk/layout.h"
#include "io/planner.h"
#include "io/run_state.h"
#include "io/victim_chooser.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace emsim::io {
namespace {

struct Fixture {
  Fixture(int k, int d, int64_t blocks)
      : layout(disk::RunLayout::Options{k, d, blocks, disk::Geometry{},
                                        disk::RunPlacement::kRoundRobin, {}}),
        cache(&sim, cache::BlockCache::Options{1000, k}),
        runs(k, blocks),
        rng(99) {}

  VictimChooser::Context Ctx() {
    VictimChooser::Context ctx;
    ctx.layout = &layout;
    ctx.cache = &cache;
    ctx.runs = &runs;
    ctx.disks = nullptr;
    ctx.rng = &rng;
    return ctx;
  }

  sim::Simulation sim;
  disk::RunLayout layout;
  cache::BlockCache cache;
  RunStates runs;
  Rng rng;
};

TEST(RunStatesTest, TracksProgress) {
  RunStates runs(3, 100);
  EXPECT_EQ(runs.size(), 3);
  EXPECT_EQ(runs.TotalRemaining(), 300);
  runs[0].consumed = 100;
  runs[1].consumed = 50;
  EXPECT_EQ(runs.TotalRemaining(), 150);
  auto active = runs.ActiveRuns();
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0], 1);
  EXPECT_EQ(active[1], 2);
  EXPECT_TRUE(runs[0].FullyConsumed());
}

TEST(RunStatesTest, FetchBookkeeping) {
  RunStates runs(1, 10);
  RunState& s = runs[0];
  EXPECT_EQ(s.RemainingOnDisk(), 10);
  EXPECT_FALSE(s.FullyRequested());
  s.next_fetch_offset = 10;
  EXPECT_TRUE(s.FullyRequested());
  EXPECT_EQ(s.RemainingOnDisk(), 0);
}

TEST(RunStatesTest, VariableLengths) {
  RunStates runs(std::vector<int64_t>{5, 15});
  EXPECT_EQ(runs[0].blocks_total, 5);
  EXPECT_EQ(runs[1].blocks_total, 15);
  EXPECT_EQ(runs.TotalRemaining(), 20);
}

TEST(DemandOnlyPlannerTest, FetchesNFromDemandRun) {
  Fixture f(10, 2, 100);
  auto planner = MakeDemandOnlyPlanner(7);
  auto ops = planner->Plan(f.Ctx(), 3);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].run, 3);
  EXPECT_EQ(ops[0].offset, 0);
  EXPECT_EQ(ops[0].nblocks, 7);
  EXPECT_TRUE(ops[0].is_demand);
}

TEST(DemandOnlyPlannerTest, TrimsAtRunEnd) {
  Fixture f(4, 1, 100);
  f.runs[2].next_fetch_offset = 98;
  auto planner = MakeDemandOnlyPlanner(10);
  auto ops = planner->Plan(f.Ctx(), 2);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].offset, 98);
  EXPECT_EQ(ops[0].nblocks, 2);
}

TEST(AllDisksOneRunPlannerTest, OneOpPerDisk) {
  Fixture f(25, 5, 1000);
  auto planner = MakeAllDisksOneRunPlanner(10, MakeRandomVictimChooser());
  auto ops = planner->Plan(f.Ctx(), 7);  // Run 7 lives on disk 2.
  ASSERT_EQ(ops.size(), 5u);
  EXPECT_TRUE(ops[0].is_demand);
  EXPECT_EQ(ops[0].run, 7);
  std::set<int> disks;
  for (const auto& op : ops) {
    disks.insert(f.layout.DiskOf(op.run));
    EXPECT_EQ(op.nblocks, 10);
  }
  EXPECT_EQ(disks.size(), 5u);  // Every disk covered exactly once.
  for (size_t i = 1; i < ops.size(); ++i) {
    EXPECT_FALSE(ops[i].is_demand);
    EXPECT_NE(ops[i].run, 7);
  }
}

TEST(AllDisksOneRunPlannerTest, SkipsExhaustedDisks) {
  Fixture f(6, 3, 10);
  // Exhaust both runs of disk 1 (runs 1 and 4).
  f.runs[1].next_fetch_offset = 10;
  f.runs[4].next_fetch_offset = 10;
  auto planner = MakeAllDisksOneRunPlanner(2, MakeRandomVictimChooser());
  auto ops = planner->Plan(f.Ctx(), 0);
  ASSERT_EQ(ops.size(), 2u);  // Demand disk 0 + disk 2 only.
  EXPECT_EQ(f.layout.DiskOf(ops[1].run), 2);
}

TEST(AllDisksOneRunPlannerTest, VictimsHaveBlocksLeft) {
  Fixture f(9, 3, 10);
  f.runs[2].next_fetch_offset = 10;  // Disk 2's first run exhausted.
  auto planner = MakeAllDisksOneRunPlanner(2, MakeRandomVictimChooser());
  for (int trial = 0; trial < 50; ++trial) {
    auto ops = planner->Plan(f.Ctx(), 0);
    for (const auto& op : ops) {
      EXPECT_GT(f.runs[op.run].RemainingOnDisk(), 0);
    }
  }
}

TEST(VictimChooserTest, RandomCoversAllCandidates) {
  Fixture f(9, 3, 10);
  auto chooser = MakeRandomVictimChooser();
  std::vector<int> candidates = {1, 4, 7};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) {
    int pick = chooser->Choose(f.Ctx(), candidates);
    seen.insert(pick);
    EXPECT_TRUE(pick == 1 || pick == 4 || pick == 7);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(VictimChooserTest, RoundRobinCycles) {
  Fixture f(9, 3, 10);
  auto chooser = MakeRoundRobinVictimChooser();
  std::vector<int> candidates = {1, 4, 7};
  EXPECT_EQ(chooser->Choose(f.Ctx(), candidates), 1);
  EXPECT_EQ(chooser->Choose(f.Ctx(), candidates), 4);
  EXPECT_EQ(chooser->Choose(f.Ctx(), candidates), 7);
  EXPECT_EQ(chooser->Choose(f.Ctx(), candidates), 1);
}

TEST(VictimChooserTest, FewestBufferedPrefersStarvedRun) {
  Fixture f(9, 3, 10);
  ASSERT_TRUE(f.cache.TryReserve(1, 5));
  ASSERT_TRUE(f.cache.TryReserve(4, 1));
  // Run 7 has nothing buffered or in flight.
  auto chooser = MakeFewestBufferedVictimChooser();
  EXPECT_EQ(chooser->Choose(f.Ctx(), {1, 4, 7}), 7);
}

TEST(VictimChooserTest, NamesAreDistinct) {
  std::set<std::string> names;
  names.insert(MakeRandomVictimChooser()->name());
  names.insert(MakeRoundRobinVictimChooser()->name());
  names.insert(MakeFewestBufferedVictimChooser()->name());
  names.insert(MakeNearestHeadVictimChooser()->name());
  names.insert(MakeClairvoyantVictimChooser()->name());
  EXPECT_EQ(names.size(), 5u);
}

TEST(VictimChooserTest, ClairvoyantPicksSoonestNeededRun) {
  Fixture f(9, 3, 10);
  // Runs 1, 4, 7 live on disk 1. Craft a trace where run 7's next block is
  // needed before run 1's and run 4's.
  std::vector<int> trace;
  for (int b = 0; b < 10; ++b) {
    for (int r = 0; r < 9; ++r) {
      trace.push_back(r);
    }
  }
  // Prefix: runs 7, 7 deplete first.
  trace.insert(trace.begin(), {7, 7});
  trace.resize(90);  // Keep it simple; the chooser only reads occurrence order.
  VictimChooser::Context ctx = f.Ctx();
  ctx.depletion_trace = &trace;
  auto chooser = MakeClairvoyantVictimChooser();
  EXPECT_EQ(chooser->Choose(ctx, {1, 4, 7}), 7);
  // After run 7's first two blocks are requested, its third occurrence is
  // later than run 1's first.
  f.runs[7].next_fetch_offset = 2;
  EXPECT_EQ(chooser->Choose(ctx, {1, 4, 7}), 1);
}

TEST(PlannerTest, NamesDescribeConfiguration) {
  auto p1 = MakeDemandOnlyPlanner(10);
  EXPECT_NE(p1->name().find("N=10"), std::string::npos);
  auto p2 = MakeAllDisksOneRunPlanner(5, MakeRandomVictimChooser());
  EXPECT_NE(p2->name().find("random"), std::string::npos);
}

}  // namespace
}  // namespace emsim::io

file(REMOVE_RECURSE
  "CMakeFiles/extsort_losertree_test.dir/extsort_losertree_test.cc.o"
  "CMakeFiles/extsort_losertree_test.dir/extsort_losertree_test.cc.o.d"
  "extsort_losertree_test"
  "extsort_losertree_test.pdb"
  "extsort_losertree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extsort_losertree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "extsort/record.h"
#include "util/status.h"

namespace emsim::extsort {
namespace {

TEST(RecordTest, OrderingByKeyThenValue) {
  Record a{1, 5};
  Record b{2, 0};
  Record c{1, 9};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_FALSE(b < a);
  EXPECT_EQ(a, (Record{1, 5}));
}

TEST(RecordBlockTest, CapacityForPaperBlock) {
  EXPECT_EQ(RecordBlock::Capacity(4096), (4096 - 4) / 16);
  EXPECT_EQ(RecordBlock::Capacity(64), 3u);
}

TEST(RecordBlockTest, EncodeDecodeRoundTrip) {
  std::vector<Record> records;
  for (uint64_t i = 0; i < 100; ++i) {
    records.push_back({i * 3, i});
  }
  std::vector<uint8_t> block(4096);
  RecordBlock::Encode(records, block);
  std::vector<Record> decoded;
  ASSERT_TRUE(RecordBlock::Decode(block, &decoded).ok());
  EXPECT_EQ(decoded, records);
}

TEST(RecordBlockTest, EmptyBlock) {
  std::vector<uint8_t> block(4096, 0xFF);
  RecordBlock::Encode({}, block);
  std::vector<Record> decoded = {{1, 1}};
  ASSERT_TRUE(RecordBlock::Decode(block, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(RecordBlockTest, PartialBlockZeroPads) {
  std::vector<Record> records = {{42, 7}};
  std::vector<uint8_t> block(4096, 0xAB);
  RecordBlock::Encode(records, block);
  // Everything past the payload is zeroed.
  for (size_t i = 4 + 16; i < block.size(); ++i) {
    EXPECT_EQ(block[i], 0) << i;
  }
}

TEST(RecordBlockTest, DecodeRejectsCorruptCount) {
  std::vector<uint8_t> block(4096);
  uint32_t bogus = 100000;
  std::memcpy(block.data(), &bogus, sizeof(bogus));
  std::vector<Record> decoded;
  Status s = RecordBlock::Decode(block, &decoded);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(RecordBlockTest, DecodeRejectsTinyBlock) {
  std::vector<uint8_t> tiny(2);
  std::vector<Record> decoded;
  EXPECT_EQ(RecordBlock::Decode(tiny, &decoded).code(), StatusCode::kCorruption);
}

TEST(IsSortedTest, Basics) {
  std::vector<Record> sorted = {{1, 0}, {1, 1}, {2, 0}};
  EXPECT_TRUE(IsSorted(sorted));
  std::vector<Record> unsorted = {{2, 0}, {1, 0}};
  EXPECT_FALSE(IsSorted(unsorted));
  EXPECT_TRUE(IsSorted({}));
}

}  // namespace
}  // namespace emsim::extsort

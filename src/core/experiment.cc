#include "core/experiment.h"

#include <thread>

#include "util/check.h"
#include "util/str.h"

namespace emsim::core {

namespace {

ExperimentResult Aggregate(std::vector<MergeResult> trials) {
  ExperimentResult out;
  for (MergeResult& r : trials) {
    out.total_ms.Add(r.total_ms);
    out.success_ratio.Add(r.SuccessRatio());
    out.concurrency.Add(r.avg_concurrency);
    out.io_operations.Add(static_cast<double>(r.io_operations));
    out.cache_occupancy.Add(r.mean_cache_occupancy);
    out.trials.push_back(std::move(r));
  }
  return out;
}

}  // namespace

std::string ExperimentResult::ToString() const {
  auto ci = stats::MeanConfidence95(total_ms);
  return StrFormat("Experiment{trials=%zu, total=%.2f±%.2f s, success=%.3f, conc=%.3f}",
                   trials.size(), ci.mean / 1000.0, ci.half_width / 1000.0,
                   MeanSuccessRatio(), MeanConcurrency());
}

ExperimentResult RunTrials(const MergeConfig& config, int num_trials) {
  EMSIM_CHECK(num_trials >= 1);
  std::vector<MergeResult> trials;
  trials.reserve(static_cast<size_t>(num_trials));
  for (int t = 0; t < num_trials; ++t) {
    MergeConfig trial_config = config;
    trial_config.seed = config.seed + static_cast<uint64_t>(t);
    Result<MergeResult> result = SimulateMerge(trial_config);
    EMSIM_CHECK_MSG(result.ok(), result.status().ToString().c_str());
    trials.push_back(*std::move(result));
  }
  return Aggregate(std::move(trials));
}

ExperimentResult RunTrialsParallel(const MergeConfig& config, int num_trials,
                                   int num_threads) {
  EMSIM_CHECK(num_trials >= 1);
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) {
      num_threads = 2;
    }
  }
  num_threads = std::min(num_threads, num_trials);
  std::vector<MergeResult> trials(static_cast<size_t>(num_trials));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_threads));
  for (int w = 0; w < num_threads; ++w) {
    workers.emplace_back([&, w] {
      for (int t = w; t < num_trials; t += num_threads) {
        MergeConfig trial_config = config;
        trial_config.seed = config.seed + static_cast<uint64_t>(t);
        Result<MergeResult> result = SimulateMerge(trial_config);
        EMSIM_CHECK_MSG(result.ok(), result.status().ToString().c_str());
        trials[static_cast<size_t>(t)] = *std::move(result);
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  return Aggregate(std::move(trials));
}

}  // namespace emsim::core

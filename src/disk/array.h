#ifndef EMSIM_DISK_ARRAY_H_
#define EMSIM_DISK_ARRAY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "disk/disk.h"
#include "disk/disk_params.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "sim/simulation.h"
#include "stats/time_weighted.h"

namespace emsim::disk {

/// A bank of `D` independent disks with a shared concurrency statistic.
/// The channel between the I/O subsystem and memory is assumed wide enough
/// for all disks to transfer at once (the paper's assumption), so the array
/// imposes no cross-disk contention — it only observes it.
class DiskArray {
 public:
  struct Options {
    DiskParams params;
    int num_disks = 5;
    uint64_t seed = 1;
    /// Optional metrics registry; wires per-disk busy/queue timelines, the
    /// shared request counters, and the "disks.concurrency" timeline.
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional fault plan consulted by every disk on every request
    /// (nullptr keeps the fault-free paths byte-identical). Must outlive
    /// the array.
    fault::FaultPlan* faults = nullptr;
  };

  DiskArray(sim::Simulation* sim, const Options& options);

  DiskArray(const DiskArray&) = delete;
  DiskArray& operator=(const DiskArray&) = delete;

  /// Starts every disk's server process.
  void Start();

  /// Stops all disks (after their queues drain).
  void Stop();

  int num_disks() const { return static_cast<int>(disks_.size()); }
  Disk& disk(int i) { return *disks_.at(static_cast<size_t>(i)); }
  const Disk& disk(int i) const { return *disks_.at(static_cast<size_t>(i)); }

  void Submit(int disk_id, DiskRequest request) { disk(disk_id).Submit(std::move(request)); }

  /// Number of disks busy right now.
  int BusyDisks() const { return busy_count_; }

  /// Time-averaged number of concurrently busy disks over the intervals
  /// where at least one disk is busy — the paper's "average I/O parallelism"
  /// (asymptotically sqrt(pi D / 2) - 1/3 for unsynchronized intra-run).
  double MeanConcurrencyWhileActive() const { return concurrency_.AverageWhilePositive(); }

  /// Time-averaged number of busy disks over all elapsed time.
  double MeanBusyDisks() const { return concurrency_.Average(); }

  /// Fraction of elapsed time with at least one busy disk.
  double ActiveFraction() const;

  /// Aggregated statistics over all disks.
  DiskStats TotalStats() const;

  /// Per-disk utilization snapshots, ordered by disk id (call FlushStats
  /// first for end-of-run figures).
  std::vector<DiskUtilization> UtilizationSnapshot() const;

  /// Closes statistic windows (array-wide and per-disk) at the current
  /// simulated time.
  void FlushStats();

 private:
  sim::Simulation* sim_;
  std::vector<std::unique_ptr<Disk>> disks_;
  int busy_count_ = 0;
  stats::TimeWeighted concurrency_;
  obs::Timeline* metric_concurrency_ = nullptr;
};

}  // namespace emsim::disk

#endif  // EMSIM_DISK_ARRAY_H_

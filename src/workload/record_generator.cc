#include "workload/record_generator.h"

#include <cstddef>

namespace emsim::workload {

RecordGenerator::RecordGenerator(const RecordGeneratorOptions& options)
    : options_(options),
      rng_(options.seed),
      zipf_(options.zipf_universe, options.zipf_theta) {}

uint64_t RecordGenerator::NextKey() {
  switch (options_.distribution) {
    case KeyDistribution::kUniform:
      return rng_.Next64();
    case KeyDistribution::kZipf:
      // Scramble the rank so hot keys are not numerically adjacent.
      return SplitMix64(zipf_.Next(rng_)).Next();
    case KeyDistribution::kNearlySorted: {
      uint64_t jitter = rng_.UniformInt(options_.nearly_sorted_window + 1);
      return counter_++ + jitter;
    }
    case KeyDistribution::kReverseSorted:
      return ~counter_++;
  }
  return rng_.Next64();
}

std::vector<uint64_t> RecordGenerator::Keys(size_t n) {
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(NextKey());
  }
  return keys;
}

}  // namespace emsim::workload

file(REMOVE_RECURSE
  "CMakeFiles/emsim_util.dir/flags.cc.o"
  "CMakeFiles/emsim_util.dir/flags.cc.o.d"
  "CMakeFiles/emsim_util.dir/logging.cc.o"
  "CMakeFiles/emsim_util.dir/logging.cc.o.d"
  "CMakeFiles/emsim_util.dir/rng.cc.o"
  "CMakeFiles/emsim_util.dir/rng.cc.o.d"
  "CMakeFiles/emsim_util.dir/status.cc.o"
  "CMakeFiles/emsim_util.dir/status.cc.o.d"
  "CMakeFiles/emsim_util.dir/str.cc.o"
  "CMakeFiles/emsim_util.dir/str.cc.o.d"
  "libemsim_util.a"
  "libemsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef EMSIM_OBS_SHARED_REGISTRY_H_
#define EMSIM_OBS_SHARED_REGISTRY_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace emsim::obs {

/// A MetricsRegistry that many threads may update concurrently.
///
/// MetricsRegistry itself is deliberately unsynchronized: its contract is one
/// registry per simulation, instrument references escaping to hot-path
/// callers, one arithmetic op per hook. That contract cannot be locked after
/// the fact — the references bypass any registry-level mutex. SharedRegistry
/// is the complement for the *aggregation* side of the house (dispatcher
/// observers, cross-trial roll-ups, the future capacity-planning daemon):
/// name-addressed updates under one lock, no escaping references, and a
/// `Samples()` snapshot that is consistent — it observes an atomic point in
/// the update stream, never a torn half-applied batch.
///
/// Per-update name lookup makes this ~10-30x slower per hook than the
/// unsynchronized registry; keep it off simulation hot loops.
class SharedRegistry {
 public:
  explicit SharedRegistry(bool enabled = true) : registry_(enabled) {}

  SharedRegistry(const SharedRegistry&) = delete;
  SharedRegistry& operator=(const SharedRegistry&) = delete;

  void IncrementCounter(const std::string& name, uint64_t n = 1)
      EMSIM_EXCLUDES(mu_);
  void SetGauge(const std::string& name, double value) EMSIM_EXCLUDES(mu_);
  void AddGauge(const std::string& name, double delta) EMSIM_EXCLUDES(mu_);
  void UpdateTimeline(const std::string& name, double now, double value)
      EMSIM_EXCLUDES(mu_);

  /// Closes every timeline's window at `now`.
  void FlushTimelines(double now) EMSIM_EXCLUDES(mu_);

  /// Consistent snapshot of the underlying registry's deterministic export.
  std::vector<MetricsRegistry::Sample> Samples() const EMSIM_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  MetricsRegistry registry_ EMSIM_GUARDED_BY(mu_);
};

}  // namespace emsim::obs

#endif  // EMSIM_OBS_SHARED_REGISTRY_H_

file(REMOVE_RECURSE
  "CMakeFiles/emsim_cache.dir/block_cache.cc.o"
  "CMakeFiles/emsim_cache.dir/block_cache.cc.o.d"
  "libemsim_cache.a"
  "libemsim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

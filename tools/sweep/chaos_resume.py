#!/usr/bin/env python3
"""Chaos-resume harness: SIGKILL the sweep driver mid-run, resume, byte-compare.

The crash-recovery acceptance check from docs/SWEEPS.md as a standalone
script (CI runs it as the `chaos-resume` job; it is also handy locally):

  1. run the spec single-process -> the reference SWEEP_paper.json bytes;
  2. launch `emsim_cli --sweep K` and poll the run journal; once a seeded,
     randomized number of shard_done records land, SIGKILL the driver —
     no warning, no flush, exactly what a crash or OOM kill does;
  3. `emsim_cli --sweep-resume <run_dir>`: the journal replays, surviving
     artifacts re-verify against their journaled digests, missing shards
     re-execute;
  4. the resumed merged JSON must be byte-identical to the reference.

The kill point is drawn from --seed (default: the EMSIM_CHAOS_SEED env var,
else wall clock) and printed, so a red CI run reproduces locally with the
same seed. Exit status: 0 on byte-identity, 1 on any divergence or driver
failure. On failure the run directory (journal + artifacts) is left in
--workdir for upload.

Usage:
  python3 tools/sweep/chaos_resume.py --cli build/tools/emsim_cli \
      [--spec tools/sweep/specs/paper_smoke.ini] [--shards 4] [--seed N] \
      [--workdir chaos_workdir]
"""

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def journal_done_count(run_dir):
    """Number of shard_done records in the run journal; torn trailing lines
    (the driver is mid-append while we poll) are skipped, matching the
    CLI's own torn-line tolerance on resume."""
    path = os.path.join(run_dir, "journal.jsonl")
    count = 0
    try:
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    if json.loads(line)["kind"] == "shard_done":
                        count += 1
                except (json.JSONDecodeError, KeyError):
                    continue
    except FileNotFoundError:
        pass
    return count


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cli",
        default=os.path.join(REPO_ROOT, "build", "tools", "emsim_cli"),
        help="path to the emsim_cli binary (default: build/tools/emsim_cli)",
    )
    parser.add_argument(
        "--spec",
        default=os.path.join(REPO_ROOT, "tools", "sweep", "specs", "paper_smoke.ini"),
        help="experiment spec to sweep (default: the PR smoke grid)",
    )
    parser.add_argument("--shards", type=int, default=4,
                        help="worker subprocesses to shard across (default 4)")
    parser.add_argument("--seed", type=int, default=None,
                        help="chaos seed (default: $EMSIM_CHAOS_SEED, else wall clock)")
    parser.add_argument("--workdir", default="chaos_workdir",
                        help="directory for the run dir and JSON outputs")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="overall per-phase timeout in seconds")
    args = parser.parse_args()

    if not os.path.exists(args.cli):
        sys.exit(f"chaos_resume: CLI not found at {args.cli} — build it first "
                 "(cmake --build build --target emsim_cli)")
    if not os.path.exists(args.spec):
        sys.exit(f"chaos_resume: spec not found: {args.spec}")

    seed = args.seed
    if seed is None:
        seed = int(os.environ.get("EMSIM_CHAOS_SEED", "0")) or int(time.time())
    rng = random.Random(seed)
    print(f"chaos_resume: seed={seed} (reproduce with --seed {seed})", flush=True)

    os.makedirs(args.workdir, exist_ok=True)
    run_dir = os.path.join(args.workdir, "run")
    reference = os.path.join(args.workdir, "SWEEP_reference.json")
    resumed_out = os.path.join(args.workdir, "SWEEP_resumed.json")

    # Phase 1: reference bytes from a single-process run.
    ref_cmd = [args.cli, "--spec", args.spec, "--json", reference]
    print("chaos_resume: reference:", " ".join(ref_cmd), flush=True)
    result = subprocess.run(ref_cmd, stdout=subprocess.DEVNULL, timeout=args.timeout)
    if result.returncode != 0:
        sys.exit(f"chaos_resume: reference run failed ({result.returncode})")

    # Phase 2: launch the sweep driver and SIGKILL it once the journal shows
    # the drawn number of completed shards. One worker serializes the shards
    # so the kill lands with work genuinely outstanding.
    target_dones = rng.randint(1, max(1, args.shards - 1))
    sweep_cmd = [
        args.cli, "--spec", args.spec,
        "--sweep", str(args.shards), "--sweep-workers", "1",
        "--shard-dir", run_dir, "--json", os.path.join(args.workdir, "SWEEP_killed.json"),
    ]
    print(f"chaos_resume: driver: {' '.join(sweep_cmd)}", flush=True)
    print(f"chaos_resume: will SIGKILL after {target_dones} shard_done record(s)",
          flush=True)
    driver = subprocess.Popen(sweep_cmd, stdout=subprocess.DEVNULL,
                              stderr=subprocess.DEVNULL)
    deadline = time.time() + args.timeout
    killed = False
    while time.time() < deadline and driver.poll() is None:
        if journal_done_count(run_dir) >= target_dones:
            driver.send_signal(signal.SIGKILL)
            killed = True
            break
        time.sleep(0.005)
    driver.wait(timeout=60)
    if killed:
        print(f"chaos_resume: driver SIGKILLed at >= {target_dones} done shard(s)",
              flush=True)
    else:
        # The sweep outran the poller. Resume on a completed run dir must
        # still reproduce the reference bytes, so the check below stands.
        print("chaos_resume: driver finished before the kill landed "
              f"(exit {driver.returncode}); resuming a completed run dir", flush=True)
    if not os.path.exists(os.path.join(run_dir, "journal.jsonl")):
        sys.exit("chaos_resume: FAIL — journal.jsonl missing after the kill")

    # Phase 3: resume.
    resume_cmd = [args.cli, "--spec", args.spec,
                  "--sweep-resume", run_dir, "--json", resumed_out]
    print("chaos_resume: resume:", " ".join(resume_cmd), flush=True)
    result = subprocess.run(resume_cmd, timeout=args.timeout)
    if result.returncode != 0:
        sys.exit(f"chaos_resume: FAIL — resume exited {result.returncode} "
                 f"(run dir kept at {run_dir})")

    # Phase 4: byte-compare.
    with open(reference, "rb") as f:
        want = f.read()
    with open(resumed_out, "rb") as f:
        got = f.read()
    if want != got:
        sys.exit(
            f"chaos_resume: FAIL — resumed {resumed_out} differs from "
            f"reference {reference} (seed {seed}, kill after {target_dones} "
            f"done shard(s); run dir kept at {run_dir})")
    print(f"chaos_resume: OK — resumed sweep is byte-identical to the "
          f"reference ({len(want)} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "extsort/loser_tree.h"
#include "util/rng.h"

namespace emsim::extsort {
namespace {

/// Merges k pre-sorted integer sequences through the loser tree and returns
/// the merged output with the winning source of each element.
std::vector<std::pair<int, int>> MergeWithTree(
    const std::vector<std::vector<int>>& sources) {
  int k = static_cast<int>(sources.size());
  LoserTree<int> tree(k);
  std::vector<size_t> pos(sources.size(), 0);
  for (int s = 0; s < k; ++s) {
    if (!sources[static_cast<size_t>(s)].empty()) {
      tree.SetInitial(s, sources[static_cast<size_t>(s)][0]);
      pos[static_cast<size_t>(s)] = 1;
    } else {
      tree.MarkExhausted(s);
    }
  }
  tree.Build();
  std::vector<std::pair<int, int>> out;
  while (!tree.Empty()) {
    int s = tree.WinnerSource();
    out.push_back({tree.WinnerItem(), s});
    auto& p = pos[static_cast<size_t>(s)];
    if (p < sources[static_cast<size_t>(s)].size()) {
      tree.ReplaceWinner(sources[static_cast<size_t>(s)][p++]);
    } else {
      tree.ExhaustWinner();
    }
  }
  return out;
}

std::vector<int> Flatten(const std::vector<std::vector<int>>& sources) {
  std::vector<int> all;
  for (const auto& s : sources) {
    all.insert(all.end(), s.begin(), s.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

TEST(LoserTreeTest, MergesTwoSources) {
  auto out = MergeWithTree({{1, 4, 7}, {2, 3, 9}});
  std::vector<int> values;
  for (auto [v, s] : out) {
    values.push_back(v);
  }
  EXPECT_EQ(values, (std::vector<int>{1, 2, 3, 4, 7, 9}));
}

TEST(LoserTreeTest, SingleSourcePassesThrough) {
  auto out = MergeWithTree({{5, 6, 7}});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].first, 5);
  EXPECT_EQ(out[2].first, 7);
  for (auto [v, s] : out) {
    EXPECT_EQ(s, 0);
  }
}

TEST(LoserTreeTest, EmptySourcesAtInit) {
  auto out = MergeWithTree({{}, {3, 4}, {}, {1}});
  std::vector<int> values;
  for (auto [v, s] : out) {
    values.push_back(v);
  }
  EXPECT_EQ(values, (std::vector<int>{1, 3, 4}));
}

TEST(LoserTreeTest, AllEmpty) {
  auto out = MergeWithTree({{}, {}, {}});
  EXPECT_TRUE(out.empty());
}

TEST(LoserTreeTest, DuplicatesBreakTiesBySourceId) {
  auto out = MergeWithTree({{5}, {5}, {5}});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].second, 0);
  EXPECT_EQ(out[1].second, 1);
  EXPECT_EQ(out[2].second, 2);
}

TEST(LoserTreeTest, SkewedLengths) {
  std::vector<std::vector<int>> sources = {{}, {}, {}, {}};
  for (int i = 0; i < 100; ++i) {
    sources[0].push_back(i * 4);
  }
  sources[1] = {1};
  sources[2] = {2, 350};
  auto out = MergeWithTree(sources);
  std::vector<int> values;
  for (auto [v, s] : out) {
    values.push_back(v);
  }
  EXPECT_EQ(values, Flatten(sources));
}

class LoserTreeRandomized : public ::testing::TestWithParam<int> {};

TEST_P(LoserTreeRandomized, MatchesStdSort) {
  int k = GetParam();
  Rng rng(static_cast<uint64_t>(k) * 7919);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::vector<int>> sources(static_cast<size_t>(k));
    for (auto& src : sources) {
      size_t len = rng.UniformInt(40);
      for (size_t i = 0; i < len; ++i) {
        src.push_back(static_cast<int>(rng.UniformInt(1000)));
      }
      std::sort(src.begin(), src.end());
    }
    auto out = MergeWithTree(sources);
    std::vector<int> values;
    for (auto [v, s] : out) {
      values.push_back(v);
    }
    EXPECT_EQ(values, Flatten(sources)) << "k=" << k << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(FanIns, LoserTreeRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 25, 50, 64, 100));

TEST(LoserTreeTest, OutputIsStreamedNotBatched) {
  // The winner is available before downstream sources are touched: verify
  // incremental consumption.
  LoserTree<int> tree(2);
  tree.SetInitial(0, 10);
  tree.SetInitial(1, 20);
  tree.Build();
  EXPECT_EQ(tree.WinnerItem(), 10);
  tree.ReplaceWinner(30);
  EXPECT_EQ(tree.WinnerItem(), 20);
  tree.ExhaustWinner();
  EXPECT_EQ(tree.WinnerItem(), 30);
  tree.ExhaustWinner();
  EXPECT_TRUE(tree.Empty());
}

}  // namespace
}  // namespace emsim::extsort

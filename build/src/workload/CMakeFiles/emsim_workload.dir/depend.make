# Empty dependencies file for emsim_workload.
# This may be replaced when dependencies are built.

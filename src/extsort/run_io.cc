#include "extsort/run_io.h"

#include <algorithm>

#include "util/check.h"
#include "util/status.h"
#include "util/str.h"

namespace emsim::extsort {

std::string RunDescriptor::ToString() const {
  return StrFormat("Run{start=%lld, blocks=%lld, records=%llu}",
                   static_cast<long long>(start_block), static_cast<long long>(num_blocks),
                   static_cast<unsigned long long>(num_records));
}

RunWriter::RunWriter(BlockDevice* device, int64_t start_block)
    : device_(device),
      start_block_(start_block),
      next_block_(start_block),
      scratch_(device->block_bytes()) {
  EMSIM_CHECK(device != nullptr);
  pending_.reserve(RecordBlock::Capacity(device->block_bytes()));
}

Status RunWriter::Append(const Record& record) {
  EMSIM_CHECK(!finished_);
  if (has_last_ && record < last_) {
    return Status::InvalidArgument("RunWriter::Append out of sorted order");
  }
  last_ = record;
  has_last_ = true;
  pending_.push_back(record);
  ++records_;
  if (pending_.size() == RecordBlock::Capacity(device_->block_bytes())) {
    return Flush();
  }
  return Status::OK();
}

Status RunWriter::Flush() {
  if (pending_.empty()) {
    return Status::OK();
  }
  RecordBlock::Encode(pending_, scratch_);
  EMSIM_RETURN_IF_ERROR(device_->Write(next_block_, scratch_));
  ++next_block_;
  pending_.clear();
  return Status::OK();
}

Result<RunDescriptor> RunWriter::Finish() {
  EMSIM_CHECK(!finished_);
  Status status = Flush();
  if (!status.ok()) {
    return status;
  }
  finished_ = true;
  RunDescriptor run;
  run.start_block = start_block_;
  run.num_blocks = next_block_ - start_block_;
  run.num_records = records_;
  return run;
}

RunReader::RunReader(BlockDevice* device, const RunDescriptor& run, int buffer_blocks)
    : device_(device),
      run_(run),
      buffer_blocks_(buffer_blocks),
      scratch_(device->block_bytes()) {
  EMSIM_CHECK(device != nullptr);
  EMSIM_CHECK(buffer_blocks >= 1);
}

bool RunReader::NeedsIo() const {
  return buffer_pos_ >= buffer_.size() && next_block_ < run_.num_blocks;
}

void RunReader::Refill() {
  buffer_.clear();
  buffered_block_ends_.clear();
  buffer_pos_ = 0;
  int64_t to_read = std::min<int64_t>(buffer_blocks_, run_.num_blocks - next_block_);
  for (int64_t i = 0; i < to_read; ++i) {
    Status status = device_->Read(run_.start_block + next_block_, scratch_);
    if (!status.ok()) {
      status_ = status;
      return;
    }
    std::vector<Record> records;
    status = RecordBlock::Decode(scratch_, &records);
    if (!status.ok()) {
      status_ = status;
      return;
    }
    buffer_.insert(buffer_.end(), records.begin(), records.end());
    buffered_block_ends_.push_back(static_cast<int64_t>(buffer_.size()));
    ++next_block_;
  }
}

bool RunReader::Next(Record* record) {
  if (!status_.ok() || records_returned_ >= run_.num_records) {
    return false;
  }
  if (buffer_pos_ >= buffer_.size()) {
    Refill();
    if (!status_.ok() || buffer_.empty()) {
      return false;
    }
  }
  *record = buffer_[buffer_pos_];
  ++buffer_pos_;
  ++records_returned_;
  // Account fully consumed blocks (a block "depletes" when its last record
  // is handed out — the unit of the paper's depletion model).
  while (!buffered_block_ends_.empty() &&
         static_cast<int64_t>(buffer_pos_) >= buffered_block_ends_.front()) {
    ++blocks_depleted_;
    // Offsets are relative to the buffer; rebase the remaining ends lazily
    // by popping — they stay valid because buffer_pos_ only grows until the
    // next Refill resets both.
    buffered_block_ends_.erase(buffered_block_ends_.begin());
  }
  return true;
}

}  // namespace emsim::extsort

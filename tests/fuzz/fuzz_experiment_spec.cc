// Fuzz harness for the experiment-spec parser (workload/experiment_spec).
//
// Two properties under fuzz:
//   1. ParseExperimentSpec never crashes, UBs, or hangs on arbitrary bytes —
//      it must reject garbage with a Status, not an abort.
//   2. ToSpec output is a ParseExperimentSpec fixed point: any spec the
//      parser accepts re-parses from its own rendering (the --print_spec
//      contract pinned by experiment_spec_test, here driven by fuzz inputs).
//
// Built with -fsanitize=fuzzer under Clang (libFuzzer entry point); under
// other compilers tests/fuzz/standalone_main.cc supplies a main() that
// replays corpus files through the same entry point.

#include <cstddef>
#include <cstdint>
#include <string>

#include "workload/experiment_spec.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  auto parsed = emsim::workload::ParseExperimentSpec(text, "fuzz-input");
  if (!parsed.ok()) {
    return 0;  // rejected cleanly: exactly what garbage should do
  }
  for (const auto& spec : parsed.value()) {
    const std::string rendered = emsim::workload::ToSpec(spec);
    auto reparsed = emsim::workload::ParseExperimentSpec(rendered, "fuzz-round-trip");
    if (!reparsed.ok() || reparsed.value().size() != 1) {
      __builtin_trap();  // accepted spec failed to round-trip
    }
  }
  return 0;
}

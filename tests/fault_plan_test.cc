#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "fault/health.h"

namespace emsim::fault {
namespace {

TEST(MediaErrorInjectorTest, ZeroRateNeverFails) {
  MediaErrorInjector injector(MediaFaultOptions{});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(injector.NextReadFails());
    EXPECT_FALSE(injector.NextWriteFails());
  }
  EXPECT_EQ(injector.injected_read_failures(), 0u);
  EXPECT_EQ(injector.injected_write_failures(), 0u);
  EXPECT_EQ(injector.read_attempts(), 1000u);
}

TEST(MediaErrorInjectorTest, NthFailureIsExact) {
  MediaFaultOptions options;
  options.fail_nth_read = 7;
  options.fail_nth_write = 3;
  MediaErrorInjector injector(options);
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(injector.NextReadFails(), i == 7) << "read " << i;
  }
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(injector.NextWriteFails(), i == 3) << "write " << i;
  }
  EXPECT_EQ(injector.injected_read_failures(), 1u);
  EXPECT_EQ(injector.injected_write_failures(), 1u);
}

TEST(MediaErrorInjectorTest, DeterministicPerSeed) {
  MediaFaultOptions options;
  options.read_failure_rate = 0.2;
  options.seed = 99;
  MediaErrorInjector a(options);
  MediaErrorInjector b(options);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.NextReadFails(), b.NextReadFails()) << "draw " << i;
  }
  EXPECT_GT(a.injected_read_failures(), 0u);
  EXPECT_LT(a.injected_read_failures(), 500u);
}

TEST(RetryPolicyTest, BackoffIsExponential) {
  RetryPolicy policy;
  policy.backoff_base_ms = 10.0;
  policy.backoff_multiplier = 3.0;
  EXPECT_DOUBLE_EQ(policy.BackoffMs(0), 10.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(1), 30.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(2), 90.0);
}

TEST(RetryPolicyTest, ValidationRejectsNonsense) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.Validate().ok());
  policy.max_retries = -1;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy{};
  policy.timeout_ms = -1.0;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy{};
  policy.backoff_multiplier = 0.5;
  EXPECT_FALSE(policy.Validate().ok());
}

TEST(FaultConfigTest, DefaultsDisableInjection) {
  FaultConfig config;
  EXPECT_FALSE(config.InjectionEnabled());
  EXPECT_TRUE(config.Validate(5).ok());
  EXPECT_EQ(config.ToString(), "fault{off}");
}

TEST(FaultConfigTest, AnySourceEnablesInjection) {
  FaultConfig config;
  config.media_error_rate = 0.01;
  EXPECT_TRUE(config.InjectionEnabled());
  config = FaultConfig{};
  config.latency_spike_rate = 0.1;
  EXPECT_TRUE(config.InjectionEnabled());
  config = FaultConfig{};
  config.fail_slow_disk = 0;
  EXPECT_TRUE(config.InjectionEnabled());
  config = FaultConfig{};
  config.fail_stop_disk = 0;
  EXPECT_TRUE(config.InjectionEnabled());
}

TEST(FaultConfigTest, ValidationCatchesBadRanges) {
  FaultConfig config;
  config.media_error_rate = 1.0;  // Certain failure can never succeed.
  EXPECT_FALSE(config.Validate(5).ok());

  config = FaultConfig{};
  config.fail_slow_disk = 5;  // Out of range for 5 disks.
  EXPECT_FALSE(config.Validate(5).ok());

  config = FaultConfig{};
  config.fail_slow_disk = 1;
  config.fail_slow_factor = 0.5;
  EXPECT_FALSE(config.Validate(5).ok());

  config = FaultConfig{};
  config.fail_stop_disk = 1;
  config.fail_stop_start_ms = 100.0;
  config.fail_stop_end_ms = 100.0;  // Empty window.
  EXPECT_FALSE(config.Validate(5).ok());

  config = FaultConfig{};
  config.fail_stop_disk = 1;
  config.fail_stop_end_ms = -1.0;  // Never lifts: valid.
  EXPECT_TRUE(config.Validate(5).ok());
}

TEST(FaultPlanTest, FailStopWindow) {
  FaultConfig config;
  config.fail_stop_disk = 1;
  config.fail_stop_start_ms = 100.0;
  config.fail_stop_end_ms = 200.0;
  FaultPlan plan(config, 3, /*base_seed=*/1);
  EXPECT_FALSE(plan.FailStopped(1, 99.0));
  EXPECT_TRUE(plan.FailStopped(1, 100.0));
  EXPECT_TRUE(plan.FailStopped(1, 199.0));
  EXPECT_FALSE(plan.FailStopped(1, 200.0));
  EXPECT_FALSE(plan.FailStopped(0, 150.0));  // Other disks unaffected.
  EXPECT_DOUBLE_EQ(plan.FailStopEndMs(1), 200.0);
  EXPECT_TRUE(std::isinf(plan.FailStopEndMs(0)));
}

TEST(FaultPlanTest, InfiniteFailStopNeverLifts) {
  FaultConfig config;
  config.fail_stop_disk = 0;
  config.fail_stop_end_ms = -1.0;
  FaultPlan plan(config, 2, 1);
  EXPECT_TRUE(plan.FailStopped(0, 0.0));
  EXPECT_TRUE(plan.FailStopped(0, 1e12));
  EXPECT_TRUE(std::isinf(plan.FailStopEndMs(0)));
}

TEST(FaultPlanTest, FailSlowFactorOnlyInsideWindow) {
  FaultConfig config;
  config.fail_slow_disk = 2;
  config.fail_slow_factor = 8.0;
  config.fail_slow_start_ms = 50.0;
  config.fail_slow_end_ms = 150.0;
  FaultPlan plan(config, 3, 1);
  EXPECT_DOUBLE_EQ(plan.OnRequestStart(2, 0.0).slow_factor, 1.0);
  EXPECT_DOUBLE_EQ(plan.OnRequestStart(2, 50.0).slow_factor, 8.0);
  EXPECT_DOUBLE_EQ(plan.OnRequestStart(2, 149.0).slow_factor, 8.0);
  EXPECT_DOUBLE_EQ(plan.OnRequestStart(2, 150.0).slow_factor, 1.0);
  EXPECT_DOUBLE_EQ(plan.OnRequestStart(1, 100.0).slow_factor, 1.0);
}

TEST(FaultPlanTest, PerDiskStreamsAreIndependent) {
  FaultConfig config;
  config.media_error_rate = 0.3;
  // Two plans, same seed: disk 1's verdict sequence must be identical even
  // when disk 0 draws a different number of verdicts in between.
  FaultPlan a(config, 2, /*base_seed=*/7);
  FaultPlan b(config, 2, /*base_seed=*/7);
  std::vector<bool> seq_a;
  std::vector<bool> seq_b;
  for (int i = 0; i < 200; ++i) {
    if (i % 3 == 0) {
      a.OnRequestStart(0, 0.0);  // Extra draws on disk 0 in plan a only.
    }
    seq_a.push_back(a.OnRequestStart(1, 0.0).media_error);
    seq_b.push_back(b.OnRequestStart(1, 0.0).media_error);
  }
  EXPECT_EQ(seq_a, seq_b);
}

TEST(FaultPlanTest, ExplicitSeedOverridesMergeSeed) {
  FaultConfig config;
  config.media_error_rate = 0.3;
  config.seed = 42;
  FaultPlan a(config, 1, /*base_seed=*/1);
  FaultPlan b(config, 1, /*base_seed=*/2);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.OnRequestStart(0, 0.0).media_error,
              b.OnRequestStart(0, 0.0).media_error)
        << "draw " << i;
  }
}

TEST(HealthTrackerTest, QuarantineAfterConsecutiveFailures) {
  HealthTracker health(3);
  EXPECT_TRUE(health.Usable(0, 0.0));
  health.NoteFailure(0, 10.0);
  EXPECT_TRUE(health.Usable(0, 10.0));  // One failure: still usable.
  health.NoteFailure(0, 20.0);
  EXPECT_FALSE(health.Usable(0, 20.0));  // Second: quarantined.
  EXPECT_TRUE(health.Usable(0, 520.0));  // Window (500 ms) elapsed.
  EXPECT_EQ(health.quarantine_events(), 1u);
  EXPECT_DOUBLE_EQ(health.quarantine_ms(), 500.0);
  EXPECT_TRUE(health.Usable(1, 20.0));  // Other disks unaffected.
}

TEST(HealthTrackerTest, SuccessClearsStreak) {
  HealthTracker health(1);
  health.NoteFailure(0, 0.0);
  health.NoteSuccess(0);
  health.NoteFailure(0, 1.0);
  EXPECT_TRUE(health.Usable(0, 1.0));  // Streak restarted, not quarantined.
}

TEST(HealthTrackerTest, RepeatFailuresExtendQuarantineWithoutDoubleCounting) {
  HealthTracker health(1);
  health.NoteFailure(0, 0.0);
  health.NoteFailure(0, 0.0);  // Quarantined until 500.
  health.NoteFailure(0, 100.0);  // Extended until 600; only 100 ms new time.
  EXPECT_EQ(health.quarantine_events(), 1u);
  EXPECT_DOUBLE_EQ(health.quarantine_ms(), 600.0);
  EXPECT_FALSE(health.Usable(0, 599.0));
  EXPECT_TRUE(health.Usable(0, 600.0));
}

TEST(HealthTrackerTest, DeadIsForever) {
  HealthTracker health(2);
  health.MarkDead(1);
  EXPECT_TRUE(health.Dead(1));
  EXPECT_FALSE(health.Usable(1, std::numeric_limits<double>::max()));
  EXPECT_EQ(health.DegradedCount(0.0), 1);
}

}  // namespace
}  // namespace emsim::fault

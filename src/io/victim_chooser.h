#ifndef EMSIM_IO_VICTIM_CHOOSER_H_
#define EMSIM_IO_VICTIM_CHOOSER_H_

#include <memory>
#include <vector>

#include "cache/block_cache.h"
#include "disk/array.h"
#include "disk/layout.h"
#include "fault/health.h"
#include "io/run_state.h"
#include "util/rng.h"

namespace emsim::io {

/// Picks which run to prefetch from on a non-demand disk during inter-run
/// prefetching. The paper adopts the uniformly random choice after finding
/// head-position heuristics not worth their bookkeeping; the alternatives
/// here exist to reproduce that ablation.
class VictimChooser {
 public:
  struct Context {
    const disk::RunLayout* layout = nullptr;
    const cache::BlockCache* cache = nullptr;
    const RunStates* runs = nullptr;
    const disk::DiskArray* disks = nullptr;  // May be null (head info absent).
    Rng* rng = nullptr;
    /// The full future depletion order when the merge replays a trace
    /// (null otherwise). Lets the clairvoyant chooser rank candidates by
    /// when their next block is actually needed (Aggarwal & Vitter's
    /// "predict which D blocks to prefetch").
    const std::vector<int>* depletion_trace = nullptr;
    /// Per-disk health under fault injection (null otherwise). Planners
    /// skip unusable disks in the inter-run fan-out and clamp intra-run
    /// depth on an unusable demand disk; `now` is the planning time the
    /// health state is evaluated at.
    const fault::HealthTracker* health = nullptr;
    double now = 0.0;
  };

  virtual ~VictimChooser() = default;

  /// Chooses among `candidates` (runs on one disk with blocks left on disk);
  /// never called with an empty candidate list.
  virtual int Choose(const Context& ctx, const std::vector<int>& candidates) = 0;

  virtual const char* name() const = 0;
};

/// Uniformly random choice (the paper's policy).
std::unique_ptr<VictimChooser> MakeRandomVictimChooser();

/// Cycles deterministically through each disk's runs.
std::unique_ptr<VictimChooser> MakeRoundRobinVictimChooser();

/// Prefers the run with the fewest cached + in-flight blocks (the run most
/// likely to stall the merge next).
std::unique_ptr<VictimChooser> MakeFewestBufferedVictimChooser();

/// Prefers the run whose next block is closest to the disk arm (head-
/// position heuristic the paper references from the companion TR).
std::unique_ptr<VictimChooser> MakeNearestHeadVictimChooser();

/// Clairvoyant: picks the candidate whose next unrequested block will be
/// depleted soonest, using the full trace (Aggarwal & Vitter's optimal
/// prediction). Only valid with trace-driven depletion; an upper bound on
/// what any realizable heuristic can achieve.
std::unique_ptr<VictimChooser> MakeClairvoyantVictimChooser();

}  // namespace emsim::io

#endif  // EMSIM_IO_VICTIM_CHOOSER_H_

file(REMOVE_RECURSE
  "libemsim_disk.a"
)

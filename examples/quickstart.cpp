// Quickstart: simulate the paper's headline configuration — merging k = 25
// sorted runs striped over D = 5 disks with combined inter-run + intra-run
// prefetching — and compare against the no-prefetch single-disk baseline
// and the closed-form analytic models.
//
//   $ ./quickstart

#include <cstdio>

#include "analysis/equations.h"
#include "analysis/model_params.h"
#include "analysis/predictor.h"
#include "core/config.h"
#include "core/experiment.h"
#include "core/merge_simulator.h"

using namespace emsim;

int main() {
  // 1. The baseline: one disk, demand fetches only (Kwan & Baer's model).
  core::MergeConfig baseline = core::MergeConfig::Paper(
      /*num_runs=*/25, /*num_disks=*/1, /*n=*/1, core::Strategy::kDemandRunOnly,
      core::SyncMode::kUnsynchronized);

  // 2. The paper's best practical configuration: 5 disks, prefetch N = 10
  //    blocks from the demand run AND one run on every other disk, CPU
  //    resuming as soon as the demand block lands.
  core::MergeConfig prefetching = core::MergeConfig::Paper(
      25, 5, 10, core::Strategy::kAllDisksOneRun, core::SyncMode::kUnsynchronized);

  std::printf("simulating: %s\n", baseline.ToString().c_str());
  auto base = core::RunTrials(baseline, 5);
  std::printf("  -> %.2f s total I/O time\n\n", base.MeanTotalSeconds());

  std::printf("simulating: %s\n", prefetching.ToString().c_str());
  auto best = core::RunTrials(prefetching, 5);
  std::printf("  -> %.2f s total I/O time, success ratio %.3f, %.2f disks busy on average\n\n",
              best.MeanTotalSeconds(), best.MeanSuccessRatio(), best.MeanConcurrency());

  std::printf("speedup: %.1fx over the single-disk baseline with %d disks\n",
              base.MeanTotalSeconds() / best.MeanTotalSeconds(), prefetching.num_disks);
  std::printf("(superlinear: seek/latency amortization compounds with overlap)\n\n");

  // 3. The analytic models predict both ends without simulating.
  analysis::ModelParams params = analysis::ModelParams::Paper(25, 5);
  analysis::Prediction eq5 =
      analysis::Predict(params, analysis::Scenario::kInterRunSync, 10);
  std::printf("analytic check — eq.5 (synchronized inter-run): %.2f s via %s\n",
              eq5.total_ms / 1e3, eq5.formula.c_str());
  std::printf("transfer-time lower bound B*T/D: %.2f s\n",
              analysis::TotalMs(params, analysis::LowerBoundPerBlockMultiDisk(params)) / 1e3);

  // 4. Inspect one trial in detail.
  auto detail = core::SimulateMerge(prefetching);
  if (!detail.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", detail.status().ToString().c_str());
    return 1;
  }
  std::printf("\none trial in detail: %s\n", detail->ToString().c_str());
  return 0;
}

#ifndef EMSIM_UTIL_THREAD_POOL_H_
#define EMSIM_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace emsim {

/// A lazily started, process-lifetime worker pool for embarrassingly
/// parallel index-space fan-out (trial and sweep runners). Replaces the
/// previous spawn-N-threads-per-call pattern: thread creation cost is paid
/// once per process, not once per experiment point, which matters when a
/// figure bench runs hundreds of short experiments.
///
/// Execution model: `Run(parallelism, num_tasks, task)` invokes
/// `task(0..num_tasks-1)`, each exactly once, using the calling thread plus
/// at most `parallelism - 1` pool workers, and returns when every task has
/// finished. Task indices are claimed dynamically (an atomic cursor), so the
/// assignment of index to thread is nondeterministic — callers must make the
/// *work* per index deterministic and index-addressed, exactly like the
/// trial runners do, for results to be independent of thread count.
///
/// With `parallelism <= 1` (or a single task) everything runs inline on the
/// caller and no worker threads are ever created.
///
/// Not reentrant: a task must not call Run() again (enforced).
///
/// Locking discipline: `mu_` guards the job slot, the stop flag, and the
/// worker vector; per-job progress is lock-free atomics inside `Job`. All
/// guarded members carry EMSIM_GUARDED_BY so Clang's thread-safety analysis
/// checks every access path.
class ThreadPool {
 public:
  /// The process-wide pool. First call constructs it; workers are only
  /// spawned once a Run() actually needs them.
  static ThreadPool& Instance();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs `task(i)` for i in [0, num_tasks) across up to `parallelism`
  /// threads (including the caller); blocks until all tasks completed.
  void Run(int parallelism, int num_tasks, const std::function<void(int)>& task)
      EMSIM_EXCLUDES(mu_);

  /// Worker threads created so far (introspection for tests).
  int WorkersSpawned() const EMSIM_EXCLUDES(mu_);

  ~ThreadPool() EMSIM_EXCLUDES(mu_);

 private:
  ThreadPool() = default;

  struct Job {
    const std::function<void(int)>* task = nullptr;
    int total = 0;
    int max_extra_workers = 0;  // Pool may be larger than this job wants.
    std::atomic<int> next{0};
    std::atomic<int> completed{0};
    std::atomic<int> worker_entrants{0};
  };

  void EnsureWorkers(int count) EMSIM_EXCLUDES(mu_);
  void WorkerLoop() EMSIM_EXCLUDES(mu_);
  void RunTasks(Job& job) EMSIM_EXCLUDES(mu_);

  mutable util::Mutex mu_;
  util::CondVar work_cv_;  // Workers sleep here between jobs.
  util::CondVar done_cv_;  // Run() sleeps here until completion.
  /// Non-null while a job is being drained.
  std::shared_ptr<Job> job_ EMSIM_GUARDED_BY(mu_);
  uint64_t job_generation_ EMSIM_GUARDED_BY(mu_) = 0;
  bool stop_ EMSIM_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_ EMSIM_GUARDED_BY(mu_);
};

}  // namespace emsim

#endif  // EMSIM_UTIL_THREAD_POOL_H_

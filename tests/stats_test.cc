
#include <string>

#include <gtest/gtest.h>

#include "stats/accumulator.h"
#include "stats/confidence.h"
#include "stats/histogram.h"
#include "stats/series.h"
#include "stats/table.h"
#include "stats/time_weighted.h"
#include "util/rng.h"

namespace emsim::stats {
namespace {

TEST(AccumulatorTest, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.Mean(), 0.0);
  EXPECT_EQ(a.Variance(), 0.0);
  EXPECT_EQ(a.Min(), 0.0);
  EXPECT_EQ(a.Max(), 0.0);
}

TEST(AccumulatorTest, KnownMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    a.Add(x);
  }
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.Mean(), 5.0);
  EXPECT_NEAR(a.Variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_EQ(a.Min(), 2.0);
  EXPECT_EQ(a.Max(), 9.0);
}

TEST(AccumulatorTest, SingleSampleHasZeroVariance) {
  Accumulator a;
  a.Add(3.14);
  EXPECT_EQ(a.Variance(), 0.0);
  EXPECT_EQ(a.Mean(), 3.14);
}

TEST(AccumulatorTest, MergeMatchesSequential) {
  Rng rng(1);
  Accumulator whole;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.UniformDouble() * 10 - 5;
    whole.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.Mean(), whole.Mean(), 1e-9);
  EXPECT_NEAR(left.Variance(), whole.Variance(), 1e-9);
  EXPECT_EQ(left.Min(), whole.Min());
  EXPECT_EQ(left.Max(), whole.Max());
}

TEST(AccumulatorTest, MergeWithEmpty) {
  Accumulator a;
  a.Add(1);
  a.Add(2);
  Accumulator empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.Mean(), 1.5);
}

TEST(AccumulatorTest, ResetClears) {
  Accumulator a;
  a.Add(5);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
}

TEST(ConfidenceTest, TTableSpotChecks) {
  EXPECT_NEAR(StudentT95(1), 12.706, 1e-3);
  EXPECT_NEAR(StudentT95(4), 2.776, 1e-3);
  EXPECT_NEAR(StudentT95(30), 2.042, 1e-3);
  EXPECT_NEAR(StudentT95(1000), 1.96, 1e-3);
}

TEST(ConfidenceTest, IntervalContainsMean) {
  Accumulator a;
  for (int i = 0; i < 10; ++i) {
    a.Add(10.0 + (i % 3));
  }
  auto ci = MeanConfidence95(a);
  EXPECT_TRUE(ci.Contains(a.Mean()));
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_LT(ci.lower(), ci.upper());
}

TEST(ConfidenceTest, CoverageOnNormalishData) {
  // ~95% of 95% CIs over repeated samples should contain the true mean.
  Rng rng(2);
  int covered = 0;
  const int experiments = 300;
  for (int e = 0; e < experiments; ++e) {
    Accumulator a;
    for (int i = 0; i < 20; ++i) {
      // Sum of uniforms ~ normal-ish, mean 5.
      double x = 0;
      for (int j = 0; j < 10; ++j) {
        x += rng.UniformDouble();
      }
      a.Add(x);
    }
    covered += MeanConfidence95(a).Contains(5.0);
  }
  EXPECT_GT(covered, experiments * 0.88);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram h(0, 10, 10);
  h.Add(-1);   // underflow -> first bucket
  h.Add(0.5);
  h.Add(9.5);
  h.Add(15);   // overflow -> last bucket
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_EQ(h.Underflow(), 1u);
  EXPECT_EQ(h.Overflow(), 1u);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(9), 2u);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(i + 0.5);
  }
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.5);
  EXPECT_LE(h.Quantile(0.0), h.Quantile(1.0));
}

TEST(HistogramTest, ApproxMean) {
  Histogram h(0, 10, 10);
  for (int i = 0; i < 1000; ++i) {
    h.Add(5.0);
  }
  EXPECT_NEAR(h.ApproxMean(), 5.5, 0.51);  // Bucket midpoint of [5,6).
}

TEST(HistogramTest, AsciiRendering) {
  Histogram h(0, 2, 2);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.6);
  std::string art = h.ToAscii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('\n'), std::string::npos);
}

TEST(TimeWeightedTest, PiecewiseAverage) {
  TimeWeighted tw;
  tw.Update(0, 2.0);   // 2 on [0,10)
  tw.Update(10, 4.0);  // 4 on [10,20)
  tw.Flush(20);
  EXPECT_DOUBLE_EQ(tw.Average(), 3.0);
  EXPECT_DOUBLE_EQ(tw.TotalTime(), 20.0);
}

TEST(TimeWeightedTest, AverageWhilePositive) {
  TimeWeighted tw;
  tw.Update(0, 0.0);
  tw.Update(10, 3.0);
  tw.Update(20, 0.0);
  tw.Flush(40);
  EXPECT_DOUBLE_EQ(tw.Average(), 30.0 / 40.0);
  EXPECT_DOUBLE_EQ(tw.AverageWhilePositive(), 3.0);
  EXPECT_DOUBLE_EQ(tw.PositiveTime(), 10.0);
}

TEST(TimeWeightedTest, ZeroDurationUpdatesAreWeightless) {
  TimeWeighted tw;
  tw.Update(0, 1.0);
  tw.Update(5, 100.0);  // Immediately overwritten at the same instant.
  tw.Update(5, 1.0);
  tw.Flush(10);
  EXPECT_DOUBLE_EQ(tw.Average(), 1.0);
}

TEST(TimeWeightedTest, EmptyIsZero) {
  TimeWeighted tw;
  EXPECT_EQ(tw.Average(), 0.0);
  EXPECT_EQ(tw.AverageWhilePositive(), 0.0);
}

TEST(SeriesTest, MinMaxLast) {
  Series s("curve");
  s.Add(1, 10);
  s.Add(2, 5);
  s.Add(3, 7);
  EXPECT_EQ(s.MinY(), 5.0);
  EXPECT_EQ(s.MaxY(), 10.0);
  EXPECT_EQ(s.LastY(), 7.0);
}

TEST(SeriesTest, NonIncreasingWithSlack) {
  Series s("t");
  s.Add(1, 10);
  s.Add(2, 8);
  s.Add(3, 8.5);
  EXPECT_FALSE(s.IsNonIncreasing(0.0));
  EXPECT_TRUE(s.IsNonIncreasing(1.0));
}

TEST(FigureTest, CsvHasHeaderAndRows) {
  Figure fig("Fig", "N", "seconds");
  auto& a = fig.AddSeries("a");
  a.Add(1, 100);
  a.Add(2, 50);
  auto& b = fig.AddSeries("b");
  b.Add(1, 80);
  std::string csv = fig.ToCsv();
  EXPECT_NE(csv.find("N,a,a_err,b,b_err"), std::string::npos);
  EXPECT_NE(csv.find("\n1,100,0,80,0"), std::string::npos);
  // Series b has no point at x=2: empty cells.
  EXPECT_NE(csv.find("\n2,50,0,,"), std::string::npos);
}

TEST(FigureTest, TableRenders) {
  Figure fig("Fig 3.2(a)", "N", "Total Time (s)");
  fig.AddSeries("Demand Run Only").Add(1, 292.5);
  std::string table = fig.ToTable();
  EXPECT_NE(table.find("Fig 3.2(a)"), std::string::npos);
  EXPECT_NE(table.find("292.5"), std::string::npos);
}

TEST(TableTest, AlignsAndRenders) {
  Table t({"config", "paper", "measured"});
  t.AddRow({"k=25", "292.5", Table::Cell(292.55)});
  t.AddRow({"k=50", "633", Table::Cell(625.1, 1)});
  std::string s = t.ToString();
  EXPECT_NE(s.find("292.55"), std::string::npos);
  EXPECT_NE(s.find("625.1"), std::string::npos);
  EXPECT_EQ(t.NumRows(), 2u);
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("config,paper,measured"), std::string::npos);
}

TEST(TableTest, ShortRowsPad) {
  Table t({"a", "b"});
  t.AddRow({"only"});
  EXPECT_NE(t.ToString().find("only"), std::string::npos);
}

}  // namespace
}  // namespace emsim::stats

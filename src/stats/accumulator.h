#ifndef EMSIM_STATS_ACCUMULATOR_H_
#define EMSIM_STATS_ACCUMULATOR_H_

#include <cstdint>
#include <limits>

namespace emsim::stats {

/// Streaming scalar statistics (Welford's algorithm): mean, variance, min,
/// max over an online sequence of observations without storing them.
class Accumulator {
 public:
  /// The complete internal state, exposed for exact serialization: a
  /// round-trip through State reproduces the accumulator bit-for-bit, which
  /// the sharded sweep codec relies on to keep merged artifacts
  /// byte-identical to single-process runs. `min`/`max` are the raw
  /// sentinels (±inf) when `count` is zero.
  struct State {
    uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  Accumulator() = default;

  /// Restores an accumulator from a previously captured state.
  static Accumulator FromState(const State& s);

  /// Captures the exact internal state.
  State state() const { return State{count_, mean_, m2_, min_, max_}; }

  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel Welford merge).
  void Merge(const Accumulator& other);

  /// Removes all observations.
  void Reset();

  uint64_t count() const { return count_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Mean of the observations; 0 if empty.
  double Mean() const;

  /// Unbiased sample variance (n-1 denominator); 0 if fewer than 2 samples.
  double Variance() const;

  /// Sample standard deviation.
  double StdDev() const;

  /// Standard error of the mean: stddev / sqrt(n).
  double StdError() const;

  double Min() const { return count_ ? min_ : 0.0; }
  double Max() const { return count_ ? max_ : 0.0; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace emsim::stats

#endif  // EMSIM_STATS_ACCUMULATOR_H_


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/planner.cc" "src/io/CMakeFiles/emsim_io.dir/planner.cc.o" "gcc" "src/io/CMakeFiles/emsim_io.dir/planner.cc.o.d"
  "/root/repo/src/io/run_state.cc" "src/io/CMakeFiles/emsim_io.dir/run_state.cc.o" "gcc" "src/io/CMakeFiles/emsim_io.dir/run_state.cc.o.d"
  "/root/repo/src/io/victim_chooser.cc" "src/io/CMakeFiles/emsim_io.dir/victim_chooser.cc.o" "gcc" "src/io/CMakeFiles/emsim_io.dir/victim_chooser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/emsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/emsim_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/emsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/emsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

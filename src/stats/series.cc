#include "stats/series.h"

#include <algorithm>
#include <cstddef>
#include <map>

#include "util/str.h"

namespace emsim::stats {

double Series::MinY() const {
  double m = 0.0;
  bool first = true;
  for (const auto& p : points_) {
    m = first ? p.y : std::min(m, p.y);
    first = false;
  }
  return m;
}

double Series::MaxY() const {
  double m = 0.0;
  bool first = true;
  for (const auto& p : points_) {
    m = first ? p.y : std::max(m, p.y);
    first = false;
  }
  return m;
}

double Series::LastY() const {
  if (points_.empty()) {
    return 0.0;
  }
  const SeriesPoint* best = &points_.front();
  for (const auto& p : points_) {
    if (p.x >= best->x) {
      best = &p;
    }
  }
  return best->y;
}

bool Series::IsNonIncreasing(double slack) const {
  for (size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].y > points_[i - 1].y + slack) {
      return false;
    }
  }
  return true;
}

Series& Figure::AddSeries(const std::string& name) {
  series_.emplace_back(name);
  return series_.back();
}

std::string Figure::ToCsv() const {
  // Collect the union of x values.
  std::map<double, std::vector<const SeriesPoint*>> rows;
  for (size_t s = 0; s < series_.size(); ++s) {
    for (const auto& p : series_[s].points()) {
      auto& row = rows[p.x];
      row.resize(series_.size(), nullptr);
      row[s] = &p;
    }
  }
  std::string out = x_label_;
  for (const auto& s : series_) {
    out += "," + s.name() + "," + s.name() + "_err";
  }
  out += "\n";
  for (const auto& [x, row] : rows) {
    out += StrFormat("%g", x);
    for (size_t s = 0; s < series_.size(); ++s) {
      const SeriesPoint* p = s < row.size() ? row[s] : nullptr;
      if (p != nullptr) {
        out += StrFormat(",%g,%g", p->y, p->y_err);
      } else {
        out += ",,";
      }
    }
    out += "\n";
  }
  return out;
}

std::string Figure::ToTable() const {
  std::map<double, std::vector<const SeriesPoint*>> rows;
  for (size_t s = 0; s < series_.size(); ++s) {
    for (const auto& p : series_[s].points()) {
      auto& row = rows[p.x];
      row.resize(series_.size(), nullptr);
      row[s] = &p;
    }
  }
  const size_t kColWidth = 26;
  std::string out = "== " + title_ + " ==\n";
  out += "   (" + y_label_ + " vs " + x_label_ + ")\n";
  out += PadLeft(x_label_, 10);
  for (const auto& s : series_) {
    out += "  " + PadLeft(s.name(), kColWidth);
  }
  out += "\n";
  for (const auto& [x, row] : rows) {
    out += PadLeft(StrFormat("%g", x), 10);
    for (size_t s = 0; s < series_.size(); ++s) {
      const SeriesPoint* p = s < row.size() ? row[s] : nullptr;
      if (p != nullptr) {
        std::string cell = p->y_err > 0 ? StrFormat("%.2f ±%.2f", p->y, p->y_err)
                                        : StrFormat("%.3f", p->y);
        out += "  " + PadLeft(cell, kColWidth);
      } else {
        out += "  " + PadLeft("-", kColWidth);
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace emsim::stats

#include "util/flags.h"

#include <cstdlib>
#include <utility>

#include "util/str.h"

namespace emsim {

namespace {

Status ParseInt64(const std::string& text, int64_t* out) {
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument(StrFormat("not an integer: '%s'", text.c_str()));
  }
  *out = v;
  return Status::OK();
}

Status ParseDoubleText(const std::string& text, double* out) {
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument(StrFormat("not a number: '%s'", text.c_str()));
  }
  *out = v;
  return Status::OK();
}

}  // namespace

void FlagSet::Register(const std::string& name, Flag flag) { flags_[name] = std::move(flag); }

void FlagSet::AddInt(const std::string& name, int* value, const std::string& help) {
  Flag flag;
  flag.help = help;
  flag.default_value = StrFormat("%d", *value);
  flag.set = [value](const std::string& text) {
    int64_t v = 0;
    EMSIM_RETURN_IF_ERROR(ParseInt64(text, &v));
    *value = static_cast<int>(v);
    return Status::OK();
  };
  Register(name, std::move(flag));
}

void FlagSet::AddInt64(const std::string& name, int64_t* value, const std::string& help) {
  Flag flag;
  flag.help = help;
  flag.default_value = StrFormat("%lld", static_cast<long long>(*value));
  flag.set = [value](const std::string& text) { return ParseInt64(text, value); };
  Register(name, std::move(flag));
}

void FlagSet::AddDouble(const std::string& name, double* value, const std::string& help) {
  Flag flag;
  flag.help = help;
  flag.default_value = StrFormat("%g", *value);
  flag.set = [value](const std::string& text) { return ParseDoubleText(text, value); };
  Register(name, std::move(flag));
}

void FlagSet::AddString(const std::string& name, std::string* value,
                        const std::string& help) {
  Flag flag;
  flag.help = help;
  flag.default_value = *value;
  flag.set = [value](const std::string& text) {
    *value = text;
    return Status::OK();
  };
  Register(name, std::move(flag));
}

void FlagSet::AddBool(const std::string& name, bool* value, const std::string& help) {
  Flag flag;
  flag.help = help;
  flag.default_value = *value ? "true" : "false";
  flag.is_bool = true;
  flag.set = [value](const std::string& text) {
    if (text.empty() || text == "true" || text == "1") {
      *value = true;
    } else if (text == "false" || text == "0") {
      *value = false;
    } else {
      return Status::InvalidArgument(StrFormat("not a boolean: '%s'", text.c_str()));
    }
    return Status::OK();
  };
  Register(name, std::move(flag));
}

Status FlagSet::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument(StrFormat("unknown flag --%s", name.c_str()));
    }
    Flag& flag = it->second;
    if (!has_value && !flag.is_bool) {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(StrFormat("flag --%s needs a value", name.c_str()));
      }
      value = argv[++i];
    }
    EMSIM_RETURN_IF_ERROR(flag.set(value));
  }
  return Status::OK();
}

std::string FlagSet::Usage() const {
  std::string out = "usage: " + program_ + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += StrFormat("  --%-22s %s (default: %s)\n", name.c_str(), flag.help.c_str(),
                     flag.default_value.empty() ? "\"\"" : flag.default_value.c_str());
  }
  return out;
}

}  // namespace emsim

#ifndef EMSIM_EXTSORT_EXTERNAL_SORT_H_
#define EMSIM_EXTSORT_EXTERNAL_SORT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "extsort/block_device.h"
#include "extsort/merger.h"
#include "extsort/record.h"
#include "extsort/run_formation.h"
#include "extsort/run_io.h"
#include "util/status.h"

namespace emsim::extsort {

/// Options for a full external sort.
struct ExternalSortOptions {
  RunFormationOptions run_formation;
  KWayMergeOptions merge;
};

/// Artifacts of a completed external sort.
struct ExternalSortResult {
  std::vector<RunDescriptor> initial_runs;
  MergeOutcome merge;  ///< Includes the output run and depletion trace.
  uint64_t device_reads = 0;
  uint64_t device_writes = 0;
};

/// A complete two-phase external mergesort over block devices: run
/// formation (load-sort or replacement selection) followed by a single
/// k-way merge pass — the algorithm whose merge phase the paper's
/// simulator models. The scratch device must have room for the initial
/// runs; the output device for the merged result.
class ExternalSorter {
 public:
  explicit ExternalSorter(const ExternalSortOptions& options) : options_(options) {}

  /// Sorts `input`, writing runs to `scratch` and the result to `output`.
  Result<ExternalSortResult> Sort(std::span<const Record> input, BlockDevice* scratch,
                                  BlockDevice* output);

  /// Reads a sorted run's records back (verification helper).
  static Result<std::vector<Record>> ReadRun(BlockDevice* device, const RunDescriptor& run);

 private:
  ExternalSortOptions options_;
};

}  // namespace emsim::extsort

#endif  // EMSIM_EXTSORT_EXTERNAL_SORT_H_

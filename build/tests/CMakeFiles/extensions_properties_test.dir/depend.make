# Empty dependencies file for extensions_properties_test.
# This may be replaced when dependencies are built.

// Extension: declustered (striped) run placement vs the paper's run-per-
// disk clustering. Striping block o of every run onto disk o mod D makes a
// single N-deep demand fetch engage min(N, D) disks — concurrency without
// inter-run prefetching and without its cache appetite. The paper's related
// work (Salem & Garcia-Molina) proposes exactly this; this bench puts the
// two roads to parallelism side by side at equal cache budgets.

#include "bench_util.h"
#include "core/config.h"
#include "disk/layout.h"
#include "stats/table.h"
#include "util/str.h"

int main() {
  using namespace emsim;
  using core::MergeConfig;
  using core::Strategy;
  using core::SyncMode;
  using stats::Table;

  bench::Banner(
      "Extension A-STRIPE: clustered vs striped placement",
      "k=25 runs x 1000 blocks, D=5 disks, unsynchronized, cache = k*N for\n"
      "all variants (the intra-run requirement). Expected shape: striped\n"
      "demand-only reaches ~D-way concurrency once N >= D and closes most\n"
      "of the gap to inter-run prefetching at a fraction of its cache;\n"
      "clustered demand-only stalls at the sqrt(D) urn limit.");

  Table table({"N", "cache", "clustered DRO (s)", "striped DRO (s)",
               "clustered conc", "striped conc", "ADOR same-cache (s)"});
  for (int n : {1, 5, 10, 25, 50}) {
    MergeConfig clustered =
        MergeConfig::Paper(25, 5, n, Strategy::kDemandRunOnly, SyncMode::kUnsynchronized);
    auto clustered_result = bench::Run(clustered);

    MergeConfig striped = clustered;
    striped.placement = disk::RunPlacement::kStriped;
    auto striped_result = bench::Run(striped);

    MergeConfig ador =
        MergeConfig::Paper(25, 5, n, Strategy::kAllDisksOneRun, SyncMode::kUnsynchronized);
    ador.cache_blocks = clustered.EffectiveCacheBlocks();  // Equal memory.
    auto ador_result = bench::Run(ador);

    table.AddRow({Table::Cell(n, 0),
                  StrFormat("%lld", (long long)clustered.EffectiveCacheBlocks()),
                  bench::TimeCell(clustered_result), bench::TimeCell(striped_result),
                  Table::Cell(clustered_result.MeanConcurrency(), 2),
                  Table::Cell(striped_result.MeanConcurrency(), 2),
                  bench::TimeCell(ador_result)});
  }
  bench::EmitTable("Two roads to disk parallelism at equal cache", table,
                   "at k*N cache the inter-run strategy is admission-starved; "
                   "striping wins there, while ADOR needs ~4x the cache to beat it "
                   "(cf. Fig 3.5)");
  emsim::bench::WriteJsonArtifact("ablation_striping");
  return 0;
}

#ifndef EMSIM_ANALYSIS_PREDICTOR_H_
#define EMSIM_ANALYSIS_PREDICTOR_H_

#include <string>

#include "analysis/model_params.h"

namespace emsim::analysis {

/// The analysis scenarios the paper derives formulas for.
enum class Scenario {
  kNoPrefetchSingleDisk,    ///< Eq. 1 (Kwan-Baer baseline).
  kIntraRunSingleDisk,      ///< Eq. 2.
  kNoPrefetchMultiDisk,     ///< Eq. 3.
  kIntraRunMultiDiskSync,   ///< Eq. 4.
  kIntraRunMultiDiskUnsync, ///< Eq. 4 total divided by the urn-game length
                            ///< (asymptotic, large N).
  kInterRunSync,            ///< Eq. 5 (success ratio ~= 1).
  kInterRunUnsyncBound,     ///< Lower bound: total transfer time / D
                            ///< (asymptotic, large N and cache).
};

const char* ScenarioName(Scenario scenario);

/// One analytic prediction.
struct Prediction {
  Scenario scenario;
  double per_block_ms = 0.0;  ///< Average I/O time per block.
  double total_ms = 0.0;      ///< Whole-merge I/O time.
  bool asymptotic = false;    ///< True when the formula only holds for large N.
  std::string formula;        ///< Human-readable description.
};

/// Evaluates the paper's formula for the scenario at intra-run depth `n`
/// (ignored where the formula has no N).
Prediction Predict(const ModelParams& params, Scenario scenario, int n);

/// Classifies a configuration into its scenario.
Scenario ClassifyScenario(bool inter_run, bool synchronized_io, int num_disks, int n);

}  // namespace emsim::analysis

#endif  // EMSIM_ANALYSIS_PREDICTOR_H_

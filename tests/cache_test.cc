#include <cstdint>

#include <gtest/gtest.h>

#include "cache/block_cache.h"
#include "sim/process.h"
#include "sim/simulation.h"

namespace emsim::cache {
namespace {

BlockCache MakeCache(sim::Simulation* sim, int64_t capacity, int runs) {
  return BlockCache(sim, BlockCache::Options{capacity, runs});
}

TEST(BlockCacheTest, StartsEmpty) {
  sim::Simulation sim;
  BlockCache cache = MakeCache(&sim, 10, 3);
  EXPECT_EQ(cache.capacity(), 10);
  EXPECT_EQ(cache.CachedBlocks(), 0);
  EXPECT_EQ(cache.ReservedBlocks(), 0);
  EXPECT_EQ(cache.FreeBlocks(), 10);
  EXPECT_FALSE(cache.HasLeadingBlock(0));
  cache.CheckInvariants();
}

TEST(BlockCacheTest, ReserveDepositConsumeCycle) {
  sim::Simulation sim;
  BlockCache cache = MakeCache(&sim, 10, 2);
  ASSERT_TRUE(cache.TryReserve(0, 3));
  EXPECT_EQ(cache.ReservedBlocks(), 3);
  EXPECT_EQ(cache.FreeBlocks(), 7);
  EXPECT_EQ(cache.InFlightForRun(0), 3);

  cache.Deposit(0, 0);
  cache.Deposit(0, 1);
  EXPECT_EQ(cache.CachedBlocks(), 2);
  EXPECT_EQ(cache.ReservedBlocks(), 1);
  EXPECT_TRUE(cache.HasLeadingBlock(0));
  EXPECT_EQ(cache.CachedForRun(0), 2);

  EXPECT_EQ(cache.ConsumeLeading(0), 0);
  EXPECT_EQ(cache.ConsumeLeading(0), 1);
  EXPECT_EQ(cache.CachedBlocks(), 0);
  EXPECT_EQ(cache.FreeBlocks(), 9);  // One frame still reserved.
  EXPECT_EQ(cache.NextConsumeOffset(0), 2);
  cache.CheckInvariants();
}

TEST(BlockCacheTest, ReserveDeniedWhenFull) {
  sim::Simulation sim;
  BlockCache cache = MakeCache(&sim, 5, 2);
  EXPECT_TRUE(cache.TryReserve(0, 5));
  EXPECT_FALSE(cache.TryReserve(1, 1));
  EXPECT_EQ(cache.stats().reservations_denied, 1u);
  // A denial reserves nothing.
  EXPECT_EQ(cache.InFlightForRun(1), 0);
  cache.CheckInvariants();
}

TEST(BlockCacheTest, ReserveAllOrNothing) {
  sim::Simulation sim;
  BlockCache cache = MakeCache(&sim, 5, 2);
  EXPECT_TRUE(cache.TryReserve(0, 3));
  EXPECT_FALSE(cache.TryReserve(1, 3));  // Only 2 free.
  EXPECT_EQ(cache.FreeBlocks(), 2);
  EXPECT_TRUE(cache.TryReserve(1, 2));
  EXPECT_EQ(cache.FreeBlocks(), 0);
}

TEST(BlockCacheTest, CancelReservationFreesFrames) {
  sim::Simulation sim;
  BlockCache cache = MakeCache(&sim, 5, 1);
  ASSERT_TRUE(cache.TryReserve(0, 4));
  cache.CancelReservation(0, 3);
  EXPECT_EQ(cache.FreeBlocks(), 4);
  EXPECT_EQ(cache.InFlightForRun(0), 1);
  cache.CheckInvariants();
}

TEST(BlockCacheTest, ZeroReserveAlwaysSucceeds) {
  sim::Simulation sim;
  BlockCache cache = MakeCache(&sim, 1, 1);
  ASSERT_TRUE(cache.TryReserve(0, 1));
  EXPECT_TRUE(cache.TryReserve(0, 0));
}

TEST(BlockCacheTest, OutOfOrderDepositsBufferUntilLeading) {
  // SSTF scheduling can deliver a later request first.
  sim::Simulation sim;
  BlockCache cache = MakeCache(&sim, 10, 1);
  ASSERT_TRUE(cache.TryReserve(0, 4));
  cache.Deposit(0, 2);
  cache.Deposit(0, 3);
  EXPECT_FALSE(cache.HasLeadingBlock(0));  // Block 0 missing.
  EXPECT_EQ(cache.CachedForRun(0), 2);
  cache.Deposit(0, 0);
  EXPECT_TRUE(cache.HasLeadingBlock(0));
  EXPECT_EQ(cache.ConsumeLeading(0), 0);
  EXPECT_FALSE(cache.HasLeadingBlock(0));  // Block 1 still in flight.
  cache.Deposit(0, 1);
  EXPECT_EQ(cache.ConsumeLeading(0), 1);
  EXPECT_EQ(cache.ConsumeLeading(0), 2);
  EXPECT_EQ(cache.ConsumeLeading(0), 3);
  cache.CheckInvariants();
}

TEST(BlockCacheTest, PerRunIsolation) {
  sim::Simulation sim;
  BlockCache cache = MakeCache(&sim, 10, 3);
  ASSERT_TRUE(cache.TryReserve(0, 1));
  ASSERT_TRUE(cache.TryReserve(2, 1));
  cache.Deposit(2, 0);
  EXPECT_FALSE(cache.HasLeadingBlock(0));
  EXPECT_TRUE(cache.HasLeadingBlock(2));
  EXPECT_EQ(cache.InFlightForRun(0), 1);
  EXPECT_EQ(cache.InFlightForRun(2), 0);
}

sim::Process WaitForBlock(sim::Simulation& /*sim*/, BlockCache& cache, int run,
                          bool& done) {
  while (!cache.HasLeadingBlock(run)) {
    co_await cache.DepositSignal(run).Wait();
  }
  done = true;
}

TEST(BlockCacheTest, DepositSignalWakesWaiters) {
  sim::Simulation sim;
  BlockCache cache = MakeCache(&sim, 4, 2);
  bool done = false;
  sim.Spawn(WaitForBlock(sim, cache, 1, done));
  sim.ScheduleCallback(5.0, [&] {
    ASSERT_TRUE(cache.TryReserve(1, 1));
    cache.Deposit(1, 0);
  });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
}

TEST(BlockCacheTest, StatsTrackFlows) {
  sim::Simulation sim;
  BlockCache cache = MakeCache(&sim, 8, 1);
  ASSERT_TRUE(cache.TryReserve(0, 2));
  cache.Deposit(0, 0);
  cache.Deposit(0, 1);
  cache.ConsumeLeading(0);
  const CacheStats& s = cache.stats();
  EXPECT_EQ(s.deposits, 2u);
  EXPECT_EQ(s.consumptions, 1u);
  EXPECT_EQ(s.reservations_granted, 1u);
  EXPECT_EQ(s.blocks_reserved, 2u);
  EXPECT_EQ(s.peak_occupancy, 2);
}

TEST(BlockCacheTest, OccupancyTimeAverage) {
  sim::Simulation sim;
  BlockCache cache = MakeCache(&sim, 4, 1);
  ASSERT_TRUE(cache.TryReserve(0, 2));
  sim.ScheduleCallback(0.0, [&] { cache.Deposit(0, 0); });
  sim.ScheduleCallback(10.0, [&] { cache.Deposit(0, 1); });
  sim.ScheduleCallback(20.0, [&] {
    cache.ConsumeLeading(0);
    cache.ConsumeLeading(0);
  });
  sim.Run();
  cache.FlushStats();
  // Occupancy: 1 on [0,10), 2 on [10,20), 0 at 20 -> average 1.5 over [0,20].
  EXPECT_NEAR(cache.MeanOccupancy(), 1.5, 1e-9);
}

TEST(BlockCacheDeathTest, DepositWithoutReservationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::Simulation sim;
  BlockCache cache = MakeCache(&sim, 4, 1);
  EXPECT_DEATH(cache.Deposit(0, 0), "Deposit without reservation");
}

TEST(BlockCacheDeathTest, ConsumeMissingLeadingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::Simulation sim;
  BlockCache cache = MakeCache(&sim, 4, 1);
  EXPECT_DEATH(cache.ConsumeLeading(0), "HasLeadingBlock");
}

TEST(BlockCacheDeathTest, StaleDepositAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::Simulation sim;
  BlockCache cache = MakeCache(&sim, 4, 1);
  ASSERT_TRUE(cache.TryReserve(0, 2));
  cache.Deposit(0, 0);
  cache.ConsumeLeading(0);
  EXPECT_DEATH(cache.Deposit(0, 0), "already-consumed");
}

}  // namespace
}  // namespace emsim::cache

#include "bench_util.h"

#include <cstdio>

#include "stats/ascii_chart.h"
#include "util/str.h"

namespace emsim::bench {

core::ExperimentResult Run(const core::MergeConfig& config) {
  return core::RunTrialsParallel(config, kTrials);
}

void EmitFigure(const stats::Figure& figure) {
  std::printf("%s\n", figure.ToTable().c_str());
  std::printf("%s\n", stats::RenderAsciiChart(figure).c_str());
  std::printf("--- CSV ---\n%s\n", figure.ToCsv().c_str());
}

void EmitTable(const std::string& title, const stats::Table& table,
               const std::string& note) {
  std::printf("== %s ==\n%s", title.c_str(), table.ToString().c_str());
  if (!note.empty()) {
    std::printf("note: %s\n", note.c_str());
  }
  std::printf("\n");
}

void Banner(const std::string& experiment_id, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("emsim reproduction | %s\n", experiment_id.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("disk: S=0.01 ms/cyl, R=8.33 ms, T=2.5641 ms/block, 1000 blocks/run\n");
  std::printf("trials per point: %d (mean reported, ±95%% CI where shown)\n", kTrials);
  std::printf("==============================================================\n\n");
}

std::string TimeCell(const core::ExperimentResult& result) {
  auto ci = result.TotalSecondsCi();
  return StrFormat("%.2f ±%.2f", ci.mean, ci.half_width);
}

}  // namespace emsim::bench

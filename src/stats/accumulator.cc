#include "stats/accumulator.h"

#include <algorithm>
#include <cmath>

namespace emsim::stats {

Accumulator Accumulator::FromState(const State& s) {
  Accumulator out;
  if (s.count == 0) {
    return out;  // Keep the default ±inf min/max sentinels.
  }
  out.count_ = s.count;
  out.mean_ = s.mean;
  out.m2_ = s.m2;
  out.min_ = s.min;
  out.max_ = s.max;
  return out;
}

void Accumulator::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::Merge(const Accumulator& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Accumulator::Reset() { *this = Accumulator(); }

double Accumulator::Mean() const { return count_ ? mean_ : 0.0; }

double Accumulator::Variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::StdDev() const { return std::sqrt(Variance()); }

double Accumulator::StdError() const {
  if (count_ == 0) {
    return 0.0;
  }
  return StdDev() / std::sqrt(static_cast<double>(count_));
}

}  // namespace emsim::stats

// Per-trial runaway guards: the engine converts a trial that exceeds its
// simulated-event cap or wall-clock budget into kDeadlineExceeded (echoing
// the offending config), and the experiment runners propagate that failure
// with the trial index instead of hanging the whole experiment.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/experiment.h"
#include "core/merge_simulator.h"
#include "core/result.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "util/status.h"

namespace emsim::core {
namespace {

MergeConfig SmallConfig() {
  MergeConfig cfg = MergeConfig::Paper(5, 2, 2, Strategy::kDemandRunOnly,
                                       SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 40;
  return cfg;
}

TEST(TrialDeadlineTest, EventCapConvertsToDeadlineExceeded) {
  MergeConfig cfg = SmallConfig();
  cfg.max_sim_events = 50;  // Far below what the merge needs.
  Result<MergeResult> result = SimulateMerge(cfg);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // The offending config is echoed so a stuck sweep names its culprit.
  EXPECT_NE(result.status().message().find("MergeConfig{"), std::string::npos)
      << result.status().ToString();
}

TEST(TrialDeadlineTest, GenerousEventCapDoesNotPerturbTheResult) {
  MergeConfig cfg = SmallConfig();
  Result<MergeResult> unbounded = SimulateMerge(cfg);
  ASSERT_TRUE(unbounded.ok());
  cfg.max_sim_events = unbounded->sim_events * 2;
  Result<MergeResult> bounded = SimulateMerge(cfg);
  ASSERT_TRUE(bounded.ok());
  // Chunked RunBounded execution pops the identical event sequence.
  EXPECT_DOUBLE_EQ(bounded->total_ms, unbounded->total_ms);
  EXPECT_EQ(bounded->sim_events, unbounded->sim_events);
  EXPECT_EQ(bounded->blocks_merged, unbounded->blocks_merged);
}

TEST(TrialDeadlineTest, WallClockBudgetConvertsToDeadlineExceeded) {
  // The wall-clock watchdog is checked between 64 Ki-event chunks, so the
  // config must generate more events than one chunk; k=25 x 3000 blocks
  // does (~90k events). An infinitesimal budget then trips the first check.
  MergeConfig cfg = MergeConfig::Paper(25, 5, 10, Strategy::kDemandRunOnly,
                                       SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 3000;
  cfg.max_wall_ms = 1e-6;
  Result<MergeResult> result = SimulateMerge(cfg);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.status().message().find("wall-clock"), std::string::npos)
      << result.status().ToString();
}

sim::Process Waiter(int repeats, double delay) {
  for (int j = 0; j < repeats; ++j) {
    co_await sim::Delay(delay);
  }
}

TEST(TrialDeadlineTest, RunBoundedMatchesRunByteForByte) {
  // The chunk primitive itself: driving a simulation in 1-event steps pops
  // the same sequence (and final clock) as one Run() call.
  auto drive = [](bool bounded) {
    sim::Simulation sim;
    for (int i = 0; i < 10; ++i) {
      sim.Spawn(Waiter(i, 1.5 * (i + 1)));
    }
    if (bounded) {
      while (!sim.RunBounded(1)) {
      }
    } else {
      sim.Run();
    }
    return std::pair<double, uint64_t>(sim.Now(), sim.events_processed());
  };
  EXPECT_EQ(drive(true), drive(false));
}

TEST(TrialDeadlineDeathTest, SerialRunnerAbortsWithTrialIndexAndConfig) {
  MergeConfig cfg = SmallConfig();
  TrialDeadline deadline;
  deadline.max_sim_events = 50;
  EXPECT_DEATH(RunTrials(cfg, 2, deadline), "trial 0 failed.*DeadlineExceeded");
}

TEST(TrialDeadlineDeathTest, ParallelRunnerAbortsWithTrialIndexAndConfig) {
  MergeConfig cfg = SmallConfig();
  TrialDeadline deadline;
  deadline.max_sim_events = 50;
  EXPECT_DEATH(RunTrialsParallel(cfg, 4, 2, deadline),
               "trial 0 failed.*DeadlineExceeded.*MergeConfig\\{");
}

TEST(TrialDeadlineDeathTest, SweepRunnerAbortsWithTaskIndex) {
  std::vector<MergeConfig> configs = {SmallConfig(), SmallConfig()};
  TrialDeadline deadline;
  deadline.max_sim_events = 50;
  EXPECT_DEATH(RunSweepParallel(configs, 2, 2, deadline),
               "sweep task 0 failed.*DeadlineExceeded");
}

TEST(TrialDeadlineTest, ConfigBoundsTakePrecedenceWhenTighter) {
  // A config-level event cap tighter than the harness deadline must win —
  // the echo then names the config's own bound.
  MergeConfig cfg = SmallConfig();
  cfg.max_sim_events = 50;
  Result<MergeResult> direct = SimulateMerge(cfg);
  ASSERT_FALSE(direct.ok());
  EXPECT_NE(direct.status().message().find("50 simulated events"), std::string::npos);
}

}  // namespace
}  // namespace emsim::core

// Randomized robustness sweep: 200 random-but-valid merge configurations
// must all complete with conserved blocks and in-range statistics, and 200
// random invalid-ish configurations must be either rejected by Validate or
// complete cleanly — never crash.

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/merge_simulator.h"
#include "disk/disk_params.h"
#include "disk/layout.h"
#include "util/rng.h"
#include "util/status.h"
#include "workload/depletion_generator.h"

namespace emsim::core {
namespace {

MergeConfig RandomConfig(Rng& rng) {
  MergeConfig cfg;
  cfg.num_runs = static_cast<int>(rng.UniformRange(1, 30));
  cfg.num_disks = static_cast<int>(rng.UniformRange(1, 8));
  cfg.blocks_per_run = rng.UniformRange(1, 80);
  cfg.prefetch_depth =
      static_cast<int>(rng.UniformRange(1, std::max<int64_t>(1, cfg.blocks_per_run)));
  cfg.strategy =
      rng.Bernoulli(0.5) ? Strategy::kDemandRunOnly : Strategy::kAllDisksOneRun;
  cfg.sync = rng.Bernoulli(0.5) ? SyncMode::kSynchronized : SyncMode::kUnsynchronized;
  cfg.admission =
      rng.Bernoulli(0.5) ? AdmissionPolicy::kConservative : AdmissionPolicy::kGreedy;
  switch (rng.UniformInt(4)) {
    case 0:
      cfg.victim = VictimPolicy::kRandom;
      break;
    case 1:
      cfg.victim = VictimPolicy::kRoundRobin;
      break;
    case 2:
      cfg.victim = VictimPolicy::kFewestBuffered;
      break;
    default:
      cfg.victim = VictimPolicy::kNearestHead;
      break;
  }
  if (rng.Bernoulli(0.3)) {
    cfg.cache_blocks = rng.UniformRange(
        cfg.num_runs, cfg.num_runs + static_cast<int64_t>(rng.UniformInt(400)));
  }
  if (rng.Bernoulli(0.3)) {
    cfg.cpu_ms_per_block = rng.UniformDouble() * 0.5;
  }
  if (rng.Bernoulli(0.25)) {
    cfg.depletion = DepletionKind::kZipf;
    cfg.zipf_theta = rng.UniformDouble() * 1.5;
  }
  if (rng.Bernoulli(0.2)) {
    cfg.write_traffic =
        rng.Bernoulli(0.5) ? WriteTraffic::kSeparateDisks : WriteTraffic::kSharedDisks;
    cfg.num_write_disks = static_cast<int>(rng.UniformRange(1, 4));
    cfg.write_batch_blocks = static_cast<int>(rng.UniformRange(1, 16));
    cfg.write_buffer_blocks = cfg.write_batch_blocks + rng.UniformRange(0, 64);
  }
  if (rng.Bernoulli(0.2)) {
    cfg.disk_params.scheduling = disk::SchedulingPolicy::kSstf;
  }
  if (rng.Bernoulli(0.2)) {
    cfg.disk_params.sequential_optimization = true;
  }
  switch (rng.UniformInt(3)) {
    case 0:
      cfg.disk_params.rotation = disk::RotationalLatencyModel::kFixedMean;
      break;
    case 1:
      cfg.disk_params.rotation = disk::RotationalLatencyModel::kAngular;
      break;
    default:
      break;  // kUniform.
  }
  if (cfg.strategy == Strategy::kDemandRunOnly && rng.Bernoulli(0.2) &&
      cfg.blocks_per_run % cfg.num_disks == 0) {
    cfg.placement = disk::RunPlacement::kStriped;
  }
  if (rng.Bernoulli(0.15)) {
    cfg.run_lengths.clear();
    if (cfg.placement != disk::RunPlacement::kStriped) {
      for (int r = 0; r < cfg.num_runs; ++r) {
        cfg.run_lengths.push_back(rng.UniformRange(1, 60));
      }
      cfg.prefetch_depth = 1 + static_cast<int>(rng.UniformInt(4));
    }
  }
  cfg.seed = rng.Next64();
  cfg.check_invariants = true;
  return cfg;
}

TEST(FuzzRobustnessTest, RandomValidConfigsComplete) {
  Rng rng(20260707);
  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    MergeConfig cfg = RandomConfig(rng);
    Status valid = cfg.Validate();
    if (!valid.ok()) {
      continue;  // Some random combinations are legitimately rejected.
    }
    auto result = SimulateMerge(cfg);
    ASSERT_TRUE(result.ok()) << cfg.ToString() << " -> " << result.status().ToString();
    EXPECT_EQ(result->blocks_merged, cfg.TotalBlocks()) << cfg.ToString();
    EXPECT_GE(result->total_ms, 0.0);
    EXPECT_LE(result->SuccessRatio(), 1.0);
    EXPECT_LE(result->avg_concurrency, cfg.num_disks + 1e-9);
    EXPECT_LE(result->cache_stats.peak_occupancy, cfg.EffectiveCacheBlocks());
    if (cfg.write_traffic != WriteTraffic::kNone) {
      EXPECT_EQ(result->write_blocks, static_cast<uint64_t>(cfg.TotalBlocks()));
    }
    ++completed;
  }
  EXPECT_GT(completed, 120);  // The generator mostly produces valid configs.
}

TEST(FuzzRobustnessTest, HostileConfigsRejectedNotCrashed) {
  Rng rng(404);
  for (int i = 0; i < 200; ++i) {
    MergeConfig cfg = RandomConfig(rng);
    // Sabotage one field.
    switch (rng.UniformInt(7)) {
      case 0:
        cfg.num_runs = static_cast<int>(rng.UniformRange(-2, 0));
        break;
      case 1:
        cfg.prefetch_depth = static_cast<int>(cfg.blocks_per_run + rng.UniformRange(1, 5));
        break;
      case 2:
        cfg.cache_blocks = rng.UniformRange(0, std::max(1, cfg.num_runs - 1));
        break;
      case 3:
        cfg.cpu_ms_per_block = -1.0;
        break;
      case 4:
        cfg.run_lengths.assign(static_cast<size_t>(cfg.num_runs) + 1, 10);
        break;
      case 5:
        cfg.depletion = DepletionKind::kTrace;
        cfg.trace = {0};  // Wrong length.
        break;
      case 6:
        cfg.write_traffic = WriteTraffic::kSeparateDisks;
        cfg.num_write_disks = 0;
        break;
    }
    auto result = SimulateMerge(cfg);
    if (result.ok()) {
      // The sabotage happened to leave a valid config; it must then behave.
      EXPECT_EQ(result->blocks_merged, cfg.TotalBlocks());
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(FuzzRobustnessTest, TraceReplayFuzz) {
  Rng rng(777);
  for (int i = 0; i < 40; ++i) {
    int k = static_cast<int>(rng.UniformRange(2, 12));
    int64_t blocks = rng.UniformRange(5, 40);
    MergeConfig cfg;
    cfg.num_runs = k;
    cfg.num_disks = static_cast<int>(rng.UniformRange(1, 4));
    cfg.blocks_per_run = blocks;
    cfg.prefetch_depth = 1 + static_cast<int>(rng.UniformInt(5));
    if (cfg.prefetch_depth > blocks) {
      cfg.prefetch_depth = static_cast<int>(blocks);
    }
    cfg.strategy = rng.Bernoulli(0.5) ? Strategy::kDemandRunOnly : Strategy::kAllDisksOneRun;
    cfg.depletion = DepletionKind::kTrace;
    cfg.trace = workload::UniformDepletionTrace(k, blocks, rng.Next64());
    cfg.victim = rng.Bernoulli(0.5) ? VictimPolicy::kClairvoyant : VictimPolicy::kRandom;
    cfg.check_invariants = true;
    cfg.seed = rng.Next64();
    auto result = SimulateMerge(cfg);
    ASSERT_TRUE(result.ok()) << cfg.ToString() << result.status().ToString();
    EXPECT_EQ(result->blocks_merged, k * blocks);
  }
}

}  // namespace
}  // namespace emsim::core

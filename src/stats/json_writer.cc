#include "stats/json_writer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace emsim::stats {

void JsonWriter::NewlineIndent() {
  out_.push_back('\n');
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    EMSIM_CHECK(out_.empty() && "one top-level value per document");
    return;
  }
  if (key_pending_) {
    // Value follows "key": on the same line.
    key_pending_ = false;
    return;
  }
  EMSIM_CHECK(stack_.back() == Scope::kArray && "object members need a Key()");
  if (counts_.back() > 0) {
    out_.push_back(',');
  }
  ++counts_.back();
  NewlineIndent();
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  stack_.push_back(Scope::kObject);
  counts_.push_back(0);
}

void JsonWriter::EndObject() {
  EMSIM_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  EMSIM_CHECK(!key_pending_);
  bool empty = counts_.back() == 0;
  stack_.pop_back();
  counts_.pop_back();
  if (!empty) {
    NewlineIndent();
  }
  out_.push_back('}');
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  stack_.push_back(Scope::kArray);
  counts_.push_back(0);
}

void JsonWriter::EndArray() {
  EMSIM_CHECK(!stack_.empty() && stack_.back() == Scope::kArray);
  bool empty = counts_.back() == 0;
  stack_.pop_back();
  counts_.pop_back();
  if (!empty) {
    NewlineIndent();
  }
  out_.push_back(']');
}

void JsonWriter::Key(std::string_view name) {
  EMSIM_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  EMSIM_CHECK(!key_pending_);
  if (counts_.back() > 0) {
    out_.push_back(',');
  }
  ++counts_.back();
  NewlineIndent();
  out_.push_back('"');
  out_.append(Escape(name));
  out_.append("\": ");
  key_pending_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_.push_back('"');
  out_.append(Escape(value));
  out_.push_back('"');
}

void JsonWriter::Number(double value) {
  BeforeValue();
  out_.append(FormatDouble(value));
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  out_.append(buf);
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
  out_.append(buf);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_.append(value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  out_.append("null");
}

std::string JsonWriter::Take() {
  EMSIM_CHECK(stack_.empty() && "unbalanced Begin/End");
  EMSIM_CHECK(!key_pending_);
  out_.push_back('\n');
  std::string doc;
  doc.swap(out_);
  return doc;
}

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\b':
        out.append("\\b");
        break;
      case '\f':
        out.append("\\f");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string JsonWriter::FormatDouble(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) {
      break;  // Shortest form that survives the round trip.
    }
  }
  return buf;
}

}  // namespace emsim::stats

#ifndef EMSIM_UTIL_FLAGS_H_
#define EMSIM_UTIL_FLAGS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace emsim {

/// Minimal command-line flag parser for the tools and examples:
/// `--name value`, `--name=value`, and bare `--bool_flag`. Unknown flags
/// are errors; remaining positional arguments are collected.
///
///     FlagSet flags("emsim_cli");
///     int runs = 25;
///     flags.AddInt("runs", &runs, "number of sorted runs (k)");
///     EMSIM_RETURN_IF_ERROR(flags.Parse(argc, argv));
class FlagSet {
 public:
  explicit FlagSet(std::string program) : program_(std::move(program)) {}

  void AddInt(const std::string& name, int* value, const std::string& help);
  void AddInt64(const std::string& name, int64_t* value, const std::string& help);
  void AddDouble(const std::string& name, double* value, const std::string& help);
  void AddString(const std::string& name, std::string* value, const std::string& help);
  void AddBool(const std::string& name, bool* value, const std::string& help);

  /// Parses argv[1..); fills registered flags. On error returns
  /// InvalidArgument with a message naming the offending flag.
  Status Parse(int argc, const char* const* argv);

  /// Arguments that were not flags, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Human-readable usage text listing every flag with its default.
  std::string Usage() const;

 private:
  struct Flag {
    std::string help;
    std::string default_value;
    bool is_bool = false;
    std::function<Status(const std::string&)> set;
  };

  void Register(const std::string& name, Flag flag);

  std::string program_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace emsim

#endif  // EMSIM_UTIL_FLAGS_H_

#include "analysis/markov.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "util/check.h"

namespace emsim::analysis {

namespace {

using State = std::vector<int>;  // Per-run cached counts, kept sorted ascending.
using Dist = std::map<State, double>;

State Sorted(State s) {
  std::sort(s.begin(), s.end());
  return s;
}

int Sum(const State& s) {
  int total = 0;
  for (int v : s) {
    total += v;
  }
  return total;
}

/// Enumerates all index subsets of size `want` from `candidates`, invoking
/// `fn(subset)` for each; used for the greedy policy's uniform choice of
/// prefetch targets.
void ForEachSubset(const std::vector<int>& candidates, int want,
                   std::vector<int>& scratch,
                   const std::function<void(const std::vector<int>&)>& fn,
                   size_t start = 0) {
  if (static_cast<int>(scratch.size()) == want) {
    fn(scratch);
    return;
  }
  for (size_t i = start; i < candidates.size(); ++i) {
    if (candidates.size() - i < static_cast<size_t>(want) - scratch.size()) {
      break;
    }
    scratch.push_back(candidates[i]);
    ForEachSubset(candidates, want, scratch, fn, i + 1);
    scratch.pop_back();
  }
}

double Binomial(int n, int k) {
  double result = 1;
  for (int i = 0; i < k; ++i) {
    result = result * (n - i) / (i + 1);
  }
  return result;
}

}  // namespace

MarkovPrefetchModel::MarkovPrefetchModel(int num_disks, int cache_blocks)
    : d_(num_disks), c_(cache_blocks) {
  EMSIM_CHECK(num_disks >= 1);
  EMSIM_CHECK(cache_blocks >= num_disks && "the cache must hold one block per run");
  EMSIM_CHECK(num_disks <= 8 && cache_blocks <= 64 && "state space too large");
}

MarkovPrefetchModel::Solution MarkovPrefetchModel::Solve(Policy policy) const {
  // Invariant: before every depletion step each run holds >= 1 cached block
  // (a run that empties is refilled synchronously within the same step), so
  // states have all entries >= 1 and sum <= C.
  Dist pi;
  pi[State(static_cast<size_t>(d_), 1)] = 1.0;

  // One power-iteration step; also accumulates I/O metrics under `pi`.
  auto step = [&](const Dist& from, Solution* metrics, double* io_weight) {
    Dist to;
    for (const auto& [state, prob] : from) {
      // Pick the depleted run uniformly; group equal counts.
      for (size_t i = 0; i < state.size(); ++i) {
        if (i > 0 && state[i] == state[i - 1]) {
          continue;  // Same multiset transition as the previous index.
        }
        int multiplicity = 0;
        for (int v : state) {
          multiplicity += v == state[i];
        }
        double branch = prob * multiplicity / d_;
        State s = state;
        s[i] -= 1;
        if (s[i] > 0) {
          to[Sorted(s)] += branch;
          continue;
        }
        // I/O operation: run i is empty.
        int free = c_ - Sum(s);
        EMSIM_DCHECK(free >= 1);
        if (policy == Policy::kConservative) {
          int parallelism;
          if (free >= d_) {
            for (auto& v : s) {
              v += 1;
            }
            parallelism = d_;
          } else {
            s[i] += 1;
            parallelism = 1;
          }
          if (metrics != nullptr) {
            metrics->parallelism += branch * parallelism;
            metrics->success += branch * (parallelism == d_ ? 1.0 : 0.0);
            *io_weight += branch;
          }
          to[Sorted(s)] += branch;
        } else {
          int m = std::min(d_, free);
          s[i] += 1;
          if (metrics != nullptr) {
            metrics->parallelism += branch * m;
            metrics->success += branch * (m == d_ ? 1.0 : 0.0);
            *io_weight += branch;
          }
          if (m == 1) {
            to[Sorted(s)] += branch;
          } else {
            // Choose m-1 of the other d-1 runs uniformly.
            std::vector<int> others;
            for (size_t j = 0; j < s.size(); ++j) {
              if (j != i) {
                others.push_back(static_cast<int>(j));
              }
            }
            double per_subset = branch / Binomial(d_ - 1, m - 1);
            std::vector<int> scratch;
            ForEachSubset(others, m - 1, scratch, [&](const std::vector<int>& subset) {
              State next = s;
              for (int j : subset) {
                next[static_cast<size_t>(j)] += 1;
              }
              to[Sorted(next)] += per_subset;
            });
          }
        }
      }
    }
    return to;
  };

  // Power iteration with 1/2 damping to kill periodicity.
  for (int iter = 0; iter < 2000; ++iter) {
    Dist next = step(pi, nullptr, nullptr);
    Dist mixed;
    double delta = 0;
    for (const auto& [state, prob] : pi) {
      mixed[state] += prob / 2;
    }
    for (const auto& [state, prob] : next) {
      mixed[state] += prob / 2;
    }
    for (const auto& [state, prob] : mixed) {
      auto it = pi.find(state);
      delta += std::fabs(prob - (it == pi.end() ? 0.0 : it->second));
    }
    pi = std::move(mixed);
    if (delta < 1e-13) {
      break;
    }
  }

  Solution metrics;
  double io_weight = 0;
  step(pi, &metrics, &io_weight);
  EMSIM_CHECK(io_weight > 0);
  metrics.parallelism /= io_weight;
  metrics.success /= io_weight;
  for (const auto& [state, prob] : pi) {
    metrics.occupancy += prob * Sum(state);
  }
  return metrics;
}

double MarkovPrefetchModel::AverageParallelism(Policy policy) const {
  int key = static_cast<int>(policy);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, Solve(policy)).first;
  }
  return it->second.parallelism;
}

double MarkovPrefetchModel::SuccessRatio(Policy policy) const {
  int key = static_cast<int>(policy);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, Solve(policy)).first;
  }
  return it->second.success;
}

double MarkovPrefetchModel::MeanOccupancy(Policy policy) const {
  int key = static_cast<int>(policy);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, Solve(policy)).first;
  }
  return it->second.occupancy;
}

}  // namespace emsim::analysis

// Property-based sweeps over the configuration space: invariants that must
// hold for EVERY strategy/geometry combination, exercised with parameterized
// gtest suites.

#include <cstdint>
#include <tuple>

#include <gtest/gtest.h>

#include "analysis/equations.h"
#include "analysis/model_params.h"
#include "core/config.h"
#include "core/experiment.h"
#include "core/merge_simulator.h"

namespace emsim::core {
namespace {

using ConfigPoint = std::tuple<int, int, int, Strategy, SyncMode, AdmissionPolicy>;

class MergeInvariants : public ::testing::TestWithParam<ConfigPoint> {
 protected:
  MergeConfig Config() const {
    auto [k, d, n, strategy, sync, admission] = GetParam();
    MergeConfig cfg = MergeConfig::Paper(k, d, n, strategy, sync);
    cfg.blocks_per_run = 60;  // Small enough to sweep broadly.
    cfg.admission = admission;
    cfg.check_invariants = true;
    cfg.seed = 1234;
    return cfg;
  }
};

TEST_P(MergeInvariants, CompletesWithConservedBlocks) {
  MergeConfig cfg = Config();
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  int64_t total = cfg.TotalBlocks();
  EXPECT_EQ(result->blocks_merged, total);
  EXPECT_EQ(result->cache_stats.consumptions, static_cast<uint64_t>(total));
  EXPECT_EQ(result->disk_totals.blocks_transferred, static_cast<uint64_t>(total));
}

TEST_P(MergeInvariants, TimeRespectsTransferLowerBound) {
  MergeConfig cfg = Config();
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  double bound = cfg.disk_params.TransferMsPerBlock() *
                 static_cast<double>(cfg.TotalBlocks()) / cfg.num_disks;
  EXPECT_GE(result->total_ms, bound * 0.999);
}

TEST_P(MergeInvariants, StatisticsWithinRanges) {
  MergeConfig cfg = Config();
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->SuccessRatio(), 0.0);
  EXPECT_LE(result->SuccessRatio(), 1.0);
  EXPECT_GE(result->avg_concurrency, 0.99);
  EXPECT_LE(result->avg_concurrency, cfg.num_disks + 1e-9);
  EXPECT_GE(result->disk_active_fraction, 0.0);
  EXPECT_LE(result->disk_active_fraction, 1.0 + 1e-9);
  EXPECT_LE(result->cache_stats.peak_occupancy, cfg.EffectiveCacheBlocks());
  EXPECT_GE(result->mean_cache_occupancy, 0.0);
  EXPECT_LE(result->mean_cache_occupancy,
            static_cast<double>(cfg.EffectiveCacheBlocks()));
}

TEST_P(MergeInvariants, SyncNeverFasterThanUnsync) {
  MergeConfig cfg = Config();
  cfg.sync = SyncMode::kSynchronized;
  auto sync_result = SimulateMerge(cfg);
  cfg.sync = SyncMode::kUnsynchronized;
  auto unsync_result = SimulateMerge(cfg);
  ASSERT_TRUE(sync_result.ok());
  ASSERT_TRUE(unsync_result.ok());
  // Identical depletion RNG stream; overlap can only help. Allow slack for
  // different rotational draws along the divergent schedules.
  EXPECT_LE(unsync_result->total_ms, sync_result->total_ms * 1.03);
}

INSTANTIATE_TEST_SUITE_P(
    StrategyGrid, MergeInvariants,
    ::testing::Combine(::testing::Values(3, 10, 25),         // k
                       ::testing::Values(1, 2, 5),           // D
                       ::testing::Values(1, 4, 15),          // N
                       ::testing::Values(Strategy::kDemandRunOnly,
                                         Strategy::kAllDisksOneRun),
                       ::testing::Values(SyncMode::kSynchronized,
                                         SyncMode::kUnsynchronized),
                       ::testing::Values(AdmissionPolicy::kConservative,
                                         AdmissionPolicy::kGreedy)));

class DepthMonotonicity : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DepthMonotonicity, DeeperPrefetchNeverMuchSlower) {
  auto [k, d] = GetParam();
  double prev = 1e18;
  for (int n : {1, 2, 5, 10, 20}) {
    MergeConfig cfg =
        MergeConfig::Paper(k, d, n, Strategy::kDemandRunOnly, SyncMode::kUnsynchronized);
    cfg.blocks_per_run = 200;
    auto result = RunTrials(cfg, 2);
    double t = result.total_ms.Mean();
    EXPECT_LE(t, prev * 1.02) << "k=" << k << " D=" << d << " N=" << n;
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, DepthMonotonicity,
                         ::testing::Combine(::testing::Values(10, 25),
                                            ::testing::Values(1, 5)));

class CacheMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(CacheMonotonicity, SuccessRatioNonDecreasingInCache) {
  int n = GetParam();
  double prev_success = -1.0;
  double prev_time = 1e18;
  for (int64_t c : {100, 300, 600, 1000, 1400}) {
    MergeConfig cfg = MergeConfig::Paper(25, 5, n, Strategy::kAllDisksOneRun,
                                         SyncMode::kUnsynchronized);
    cfg.blocks_per_run = 400;
    cfg.cache_blocks = c;
    auto result = RunTrials(cfg, 3);
    double success = result.MeanSuccessRatio();
    EXPECT_GE(success, prev_success - 0.03) << "N=" << n << " C=" << c;
    EXPECT_LE(result.total_ms.Mean(), prev_time * 1.05) << "N=" << n << " C=" << c;
    prev_success = success;
    prev_time = result.total_ms.Mean();
  }
  EXPECT_GT(prev_success, 0.9);  // Ample cache ends near success ratio 1.
}

INSTANTIATE_TEST_SUITE_P(Depths, CacheMonotonicity, ::testing::Values(1, 5, 10));

class AnalyticAgreement
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(AnalyticAgreement, SimulationWithinTwoPercentOfFormula) {
  auto [k, d, n] = GetParam();
  // Synchronized demand-run-only is eq.4 (eq.1-3 are its special cases).
  MergeConfig cfg =
      MergeConfig::Paper(k, d, n, Strategy::kDemandRunOnly, SyncMode::kSynchronized);
  auto result = RunTrials(cfg, 3);
  analysis::ModelParams p = analysis::ModelParams::Paper(k, d);
  double expect = analysis::TotalMs(p, analysis::Eq4IntraRunMultiDiskSync(p, n));
  EXPECT_NEAR(result.total_ms.Mean(), expect, expect * 0.02)
      << "k=" << k << " D=" << d << " N=" << n;
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, AnalyticAgreement,
                         ::testing::Combine(::testing::Values(25, 50),
                                            ::testing::Values(1, 5),
                                            ::testing::Values(1, 5, 10, 20)));

}  // namespace
}  // namespace emsim::core

#ifndef EMSIM_DISK_MECHANISM_H_
#define EMSIM_DISK_MECHANISM_H_

#include <cstdint>

#include "analysis/equations.h"
#include "disk/disk_params.h"
#include "util/rng.h"

namespace emsim::disk {

/// Cost breakdown of one positioning + transfer operation.
struct AccessCost {
  double seek_ms = 0.0;
  double rotation_ms = 0.0;
  double transfer_ms = 0.0;   ///< For the whole n-block transfer.
  int64_t seek_cylinders = 0;  ///< Absolute arm travel distance.
  bool sequential = false;     ///< True if the sequential optimization fired.

  double PositioningMs() const { return seek_ms + rotation_ms; }
  double TotalMs() const { return seek_ms + rotation_ms + transfer_ms; }
};

/// Stateful head-position model of a single disk: tracks the arm cylinder
/// and the next physically sequential block, and prices an access to `n`
/// contiguous blocks as seek(distance) + rotational latency + n * T, the
/// paper's cost model. Pure timing logic with no simulator dependency, so
/// the analysis and the external-sort accounting reuse it directly.
class Mechanism {
 public:
  explicit Mechanism(const DiskParams& params);

  /// Prices an access to `nblocks` contiguous blocks starting at disk-local
  /// block `start_block`, updates the head position, and returns the cost.
  /// `rng` supplies the rotational latency draw under kUniform; `now_ms` is
  /// the absolute time the request starts service and is required (>= 0)
  /// under the kAngular model, ignored otherwise.
  AccessCost Access(int64_t start_block, int nblocks, Rng& rng, double now_ms = -1.0);

  /// Angular start position of a block within its track, as a fraction of a
  /// revolution in [0, 1). Exposed for tests of the kAngular model.
  double BlockAngle(int64_t block) const;

  /// Arm travel (in cylinders) that an access to `start_block` would incur
  /// now, without performing it. Used by SSTF scheduling.
  int64_t SeekDistanceTo(int64_t start_block) const;

  int64_t current_cylinder() const { return current_cylinder_; }

  const DiskParams& params() const { return params_; }

 private:
  DiskParams params_;
  int64_t current_cylinder_ = 0;
  int64_t next_sequential_block_ = -1;
};

}  // namespace emsim::disk

#endif  // EMSIM_DISK_MECHANISM_H_

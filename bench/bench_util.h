#ifndef EMSIM_BENCH_BENCH_UTIL_H_
#define EMSIM_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/config.h"
#include "core/experiment.h"
#include "stats/series.h"
#include "stats/table.h"

namespace emsim::bench {

/// Default number of averaged trials per experiment point (paper's count is
/// OCR-lost; 5 keeps every bench binary under a minute).
inline constexpr int kTrials = 5;

/// Trials per point actually used: kTrials, or the EMSIM_BENCH_TRIALS
/// environment override (CI smoke jobs run with EMSIM_BENCH_TRIALS=2).
int Trials();

/// Worker-pool parallelism for experiment points: 1 (serial — the default,
/// so bench numbers on developer machines are not polluted by oversubscribed
/// threads), or the EMSIM_BENCH_THREADS override ("0" = hardware
/// concurrency, N = exactly N threads).
int Threads();

/// Runs the config for Trials() trials and returns the aggregate. Every call
/// is also recorded (as "point_NNN" in call order, or under `name`) for
/// WriteJsonArtifact.
core::ExperimentResult Run(const core::MergeConfig& config,
                           const std::string& name = "");

/// Runs a batch of configs — Trials() trials each — through one flattened
/// config × trial task space on the shared worker pool, so small per-point
/// trial counts still fill every thread. Results come back in input order,
/// and each point is recorded for WriteJsonArtifact exactly as if Run() had
/// been called in sequence (identical artifact bytes).
std::vector<core::ExperimentResult> RunSweep(const std::vector<core::MergeConfig>& configs);

/// Prints a figure (table + CSV) with a standard banner.
void EmitFigure(const stats::Figure& figure);

/// Prints a paper-vs-measured table with a banner and a shape note.
void EmitTable(const std::string& title, const stats::Table& table,
               const std::string& note = "");

/// Writes every experiment recorded by Run() since process start as a
/// schema-stable JSON document (core::ExperimentSetToJson) to
/// BENCH_<bench_name>.json — the artifact CI uploads and diffs. Directory
/// from EMSIM_BENCH_JSON_DIR (default: working directory); set
/// EMSIM_BENCH_JSON=0 to disable. Call once at the end of main.
void WriteJsonArtifact(const std::string& bench_name);

/// Standard banner for a bench binary.
void Banner(const std::string& experiment_id, const std::string& what);

/// Formats "x.xx ±y.yy" seconds from an experiment aggregate.
std::string TimeCell(const core::ExperimentResult& result);

}  // namespace emsim::bench

#endif  // EMSIM_BENCH_BENCH_UTIL_H_

file(REMOVE_RECURSE
  "libemsim_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/tag_sort_test.dir/tag_sort_test.cc.o"
  "CMakeFiles/tag_sort_test.dir/tag_sort_test.cc.o.d"
  "tag_sort_test"
  "tag_sort_test.pdb"
  "tag_sort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

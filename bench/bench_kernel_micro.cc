// Google-benchmark microbenchmarks of the simulation substrate: event
// calendar throughput, coroutine process switching, disk service pricing and
// full merge-trial cost. These calibrate how much simulated work one wall
// second buys (the figure benches run hundreds of trials).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/config.h"
#include "core/merge_simulator.h"
#include "disk/disk_params.h"
#include "disk/mechanism.h"
#include "extsort/loser_tree.h"
#include "obs/metrics.h"
#include "sim/calendar.h"
#include "sim/event.h"
#include "sim/frame_pool.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace emsim {
namespace {

// Counts every global heap allocation (see the replaced operator new below).
// The kernel benches report allocs_per_op so a regression that silently
// reintroduces per-event or per-frame heap traffic shows up in the numbers,
// not just in wall time.
std::atomic<uint64_t> g_heap_allocs{0};

uint64_t HeapAllocs() { return g_heap_allocs.load(std::memory_order_relaxed); }

/// Attaches the standard kernel counters to `state` after the timed loop:
/// events per wall second, simulation events per benchmark op, and global
/// heap allocations per op.
void SetKernelCounters(benchmark::State& state, uint64_t events,
                       uint64_t heap_allocs_before) {
  auto ops = static_cast<double>(state.iterations());
  state.counters["events_per_second"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["events_per_op"] = static_cast<double>(events) / ops;
  state.counters["allocs_per_op"] =
      static_cast<double>(HeapAllocs() - heap_allocs_before) / ops;
}

// The calendar benches run BENCHMARK_CAPTURE'd over both backends, so one
// binary yields a trustworthy heap-vs-calendar-queue A/B (same build, same
// box, interleaved by the runner) — the numbers docs/PERFORMANCE.md quotes.
void BM_CalendarScheduleExecute(benchmark::State& state, sim::CalendarBackend backend) {
  uint64_t events = 0;
  uint64_t allocs0 = HeapAllocs();
  for (auto _ : state) {
    sim::Simulation sim(backend);
    int64_t counter = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleCallback(static_cast<double>(i % 97), [&counter] { ++counter; });
    }
    sim.Run();
    benchmark::DoNotOptimize(counter);
    events += sim.events_processed();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  SetKernelCounters(state, events, allocs0);
}
BENCHMARK_CAPTURE(BM_CalendarScheduleExecute, heap, sim::CalendarBackend::kHeap);
BENCHMARK_CAPTURE(BM_CalendarScheduleExecute, cq, sim::CalendarBackend::kCalendarQueue);

// Self-rescheduling callback for the hold model below: each invocation pops
// as the minimum and pushes one replacement at now + U[0.5, 2.5), keeping the
// population constant. The whole struct (16 bytes, trivially copyable) rides
// inline in a recycled callback cell, so steady state allocates nothing; the
// xorshift stream lives in the struct and travels with each copy.
struct HoldHopper {
  sim::Simulation* sim;
  uint64_t rng_state;

  void operator()() {
    uint64_t x = rng_state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rng_state = x;
    double delta = 0.5 + static_cast<double>(x >> 44) * (1.0 / 524288.0);
    sim->ScheduleCallback(sim->Now() + delta, *this);
  }
};

// Classic hold model (the standard event-calendar benchmark): fixed
// population n, each op replaces the minimum. This is the steady-state
// shape of a running merge — a calendar of pending disk completions at
// roughly constant depth — and the regime where backend asymptotics actually
// separate: the 4-ary heap pays O(log n) sift work per hold, the calendar
// queue amortized O(1). Pools and buckets are warmed before the counter
// snapshot, so allocs_per_op gates at zero.
void BM_CalendarHold(benchmark::State& state, sim::CalendarBackend backend) {
  const int n = static_cast<int>(state.range(0));
  sim::Simulation sim(backend);
  for (int i = 0; i < n; ++i) {
    HoldHopper hopper{&sim, 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(i + 1)};
    sim.ScheduleCallback(static_cast<double>(i) / static_cast<double>(n), hopper);
  }
  // Warm-up: settle calendar-queue resizes, bucket capacities and the
  // callback pool before counters are snapshotted.
  sim.RunBounded(static_cast<uint64_t>(8 * n) + 10000);
  uint64_t allocs0 = HeapAllocs();
  uint64_t events0 = sim.events_processed();
  for (auto _ : state) {
    sim.RunBounded(1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  SetKernelCounters(state, sim.events_processed() - events0, allocs0);
}
BENCHMARK_CAPTURE(BM_CalendarHold, heap, sim::CalendarBackend::kHeap)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_CalendarHold, cq, sim::CalendarBackend::kCalendarQueue)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096);

// A cohort member for the same-timestamp-burst bench: alternates between two
// latch events so the driver can rearm one while everyone waits on the other.
sim::Process BurstCohortWaiter(sim::Event& ping, sim::Event& pong) {
  for (;;) {
    co_await ping.Wait();
    co_await pong.Wait();
  }
}

// The high-prefetch-depth common case: D disk completions land on one tick
// and Event::Set releases the whole cohort through ScheduleHandleBurst — one
// calendar entry for D resumes instead of D pushes + D pops. Each op is one
// full burst cycle (Set, dispatch D waiters, rearm); events_per_op = D
// because a burst still counts one processed event per member. Ping-pong
// between two latches keeps every waiter list and the pooled burst cell at
// steady-state capacity, so allocs_per_op gates at zero here too.
void BM_CalendarSameTimeBurst(benchmark::State& state, sim::CalendarBackend backend) {
  const int d = static_cast<int>(state.range(0));
  sim::Simulation sim(backend);
  sim::Event ping(&sim);
  sim::Event pong(&sim);
  for (int i = 0; i < d; ++i) {
    sim.Spawn(BurstCohortWaiter(ping, pong));
  }
  sim.Run();  // Everyone parks on ping.
  sim::Event* phases[2] = {&ping, &pong};
  int cur = 0;
  for (int round = 0; round < 4; ++round) {  // Warm both waiter lists.
    phases[cur]->Set();
    sim.Run();
    phases[cur]->Reset();
    cur ^= 1;
  }
  uint64_t allocs0 = HeapAllocs();
  uint64_t events0 = sim.events_processed();
  for (auto _ : state) {
    phases[cur]->Set();
    sim.Run();
    phases[cur]->Reset();
    cur ^= 1;
  }
  state.SetItemsProcessed(state.iterations() * d);
  SetKernelCounters(state, sim.events_processed() - events0, allocs0);
}
BENCHMARK_CAPTURE(BM_CalendarSameTimeBurst, heap, sim::CalendarBackend::kHeap)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);
BENCHMARK_CAPTURE(BM_CalendarSameTimeBurst, cq, sim::CalendarBackend::kCalendarQueue)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);

sim::Process Hopper(sim::Simulation& /*sim*/, int hops) {
  for (int i = 0; i < hops; ++i) {
    co_await sim::Delay(1.0);
  }
}

void BM_CoroutineContextSwitch(benchmark::State& state) {
  uint64_t events = 0;
  uint64_t allocs0 = HeapAllocs();
  for (auto _ : state) {
    sim::Simulation sim;
    sim.Spawn(Hopper(sim, 1000));
    sim.Run();
    events += sim.events_processed();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  SetKernelCounters(state, events, allocs0);
}
BENCHMARK(BM_CoroutineContextSwitch);

sim::Process Nop(sim::Simulation& /*sim*/) { co_return; }

// Spawn/finish cost of a shortest-possible process: one frame-pool
// allocation, live-table insert, inline completion, frame free. The
// frame-pool counters confirm the frames recycle (pool_allocs grows,
// bytes_reserved does not).
void BM_ProcessSpawnFinish(benchmark::State& state) {
  uint64_t allocs0 = HeapAllocs();
  sim::FramePool::ResetThreadStats();
  uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 1000; ++i) {
      sim.Spawn(Nop(sim));
    }
    sim.Run();
    events += sim.events_processed();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  SetKernelCounters(state, events, allocs0);
  sim::FramePool::Stats fp = sim::FramePool::ThreadStats();
  state.counters["frame_pool_allocs_per_op"] =
      static_cast<double>(fp.pool_allocs) / static_cast<double>(state.iterations());
  state.counters["frame_pool_bytes_reserved"] = static_cast<double>(fp.bytes_reserved);
}
BENCHMARK(BM_ProcessSpawnFinish);

void BM_MechanismAccess(benchmark::State& state) {
  disk::Mechanism mech{disk::DiskParams::Paper()};
  Rng rng(1);
  int64_t block = 0;
  for (auto _ : state) {
    block = (block + 2048) % 60000;
    benchmark::DoNotOptimize(mech.Access(block, 10, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MechanismAccess);

void BM_LoserTreeReplay(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Rng rng(7);
  extsort::LoserTree<uint64_t> tree(k);
  for (int s = 0; s < k; ++s) {
    tree.SetInitial(s, rng.Next64());
  }
  tree.Build();
  for (auto _ : state) {
    tree.ReplaceWinner(tree.WinnerItem() + rng.UniformInt(1024));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoserTreeReplay)->Arg(8)->Arg(64)->Arg(512);

void BM_FullMergeTrial(benchmark::State& state, sim::CalendarBackend backend) {
  core::MergeConfig cfg =
      core::MergeConfig::Paper(25, 5, static_cast<int>(state.range(0)),
                               core::Strategy::kAllDisksOneRun,
                               core::SyncMode::kUnsynchronized);
  cfg.calendar = backend;
  uint64_t seed = 1;
  uint64_t allocs0 = HeapAllocs();
  uint64_t events = 0;
  for (auto _ : state) {
    cfg.seed = seed++;
    auto result = core::SimulateMerge(cfg);
    benchmark::DoNotOptimize(result->total_ms);
    events += result->sim_events;
  }
  state.SetItemsProcessed(state.iterations() * 25000);  // Blocks per trial.
  SetKernelCounters(state, events, allocs0);
}
BENCHMARK_CAPTURE(BM_FullMergeTrial, heap, sim::CalendarBackend::kHeap)->Arg(1)->Arg(10);
BENCHMARK_CAPTURE(BM_FullMergeTrial, cq, sim::CalendarBackend::kCalendarQueue)->Arg(1)->Arg(10);

}  // namespace
}  // namespace emsim

// Counting replacements for the global allocation functions. Replacing
// operator new/delete is the standard-sanctioned hook ([replacement.functions]);
// malloc keeps its libc definition, so the counter covers exactly the C++
// allocations the kernel could issue (std::function boxes, vector growth,
// coroutine frames that miss the pool). GCC flags free() on new-ed pointers
// when it inlines both sides, but pairing malloc with the replaced operator
// new is exactly the sanctioned layout.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  emsim::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  emsim::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

BENCHMARK_MAIN();

#ifndef EMSIM_STATS_SERIES_H_
#define EMSIM_STATS_SERIES_H_

#include <string>
#include <utility>
#include <vector>

namespace emsim::stats {

/// One (x, y) point with an optional error half-width on y.
struct SeriesPoint {
  double x = 0.0;
  double y = 0.0;
  double y_err = 0.0;
};

/// A named curve, as plotted in the paper's figures (e.g. "Demand Run Only
/// (25 runs, 5 disks)"). Benches build one Series per legend entry.
class Series {
 public:
  Series() = default;
  explicit Series(std::string name) : name_(std::move(name)) {}

  void Add(double x, double y, double y_err = 0.0) { points_.push_back({x, y, y_err}); }

  const std::string& name() const { return name_; }
  const std::vector<SeriesPoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Minimum/maximum y over the series; 0 if empty.
  double MinY() const;
  double MaxY() const;

  /// y at the largest x (the asymptote proxy); 0 if empty.
  double LastY() const;

  /// True if y never increases as x increases by more than `slack` (absolute).
  bool IsNonIncreasing(double slack = 0.0) const;

 private:
  std::string name_;
  std::vector<SeriesPoint> points_;
};

/// A figure: a set of curves over a common x-axis, with CSV and gnuplot-ish
/// ASCII rendering so each bench binary can print the same series the paper
/// plots.
class Figure {
 public:
  Figure(std::string title, std::string x_label, std::string y_label)
      : title_(std::move(title)), x_label_(std::move(x_label)), y_label_(std::move(y_label)) {}

  Series& AddSeries(const std::string& name);
  const std::vector<Series>& series() const { return series_; }
  const std::string& title() const { return title_; }

  /// CSV: header "x,<name1>,<name1>_err,..."; rows joined on x values.
  std::string ToCsv() const;

  /// Human-readable table: one row per x, one column per series.
  std::string ToTable() const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
};

}  // namespace emsim::stats

#endif  // EMSIM_STATS_SERIES_H_

#include "cache/block_cache.h"

#include <algorithm>
#include <cstddef>

#include "util/check.h"

namespace emsim::cache {

BlockCache::BlockCache(sim::Simulation* sim, const Options& options)
    : sim_(sim), capacity_(options.capacity_blocks) {
  EMSIM_CHECK(sim != nullptr);
  EMSIM_CHECK(options.capacity_blocks >= 1);
  EMSIM_CHECK(options.num_runs >= 1);
  runs_.resize(static_cast<size_t>(options.num_runs));
  for (auto& slot : runs_) {
    slot.signal = std::make_unique<sim::Signal>(sim);
  }
  if (options.metrics != nullptr) {
    metric_occupancy_ = &options.metrics->GetTimeline("cache.occupancy");
    metric_deposits_ = &options.metrics->GetCounter("cache.deposits");
    metric_denied_ = &options.metrics->GetCounter("cache.admission_denied");
  }
  occupancy_.Update(sim->Now(), 0.0);
  if (metric_occupancy_ != nullptr) {
    metric_occupancy_->Update(sim->Now(), 0.0);
  }
}

bool BlockCache::TryReserve(int run, int64_t n) {
  EMSIM_CHECK(n >= 0);
  if (n == 0) {
    return true;
  }
  if (FreeBlocks() < n) {
    ++stats_.reservations_denied;
    if (metric_denied_ != nullptr) {
      metric_denied_->Increment();
    }
    return false;
  }
  RunOf(run).reserved += n;
  reserved_total_ += n;
  ++stats_.reservations_granted;
  stats_.blocks_reserved += static_cast<uint64_t>(n);
  stats_.peak_occupancy = std::max(stats_.peak_occupancy, cached_total_ + reserved_total_);
  return true;
}

void BlockCache::CancelReservation(int run, int64_t n) {
  EMSIM_CHECK(n >= 0);
  RunSlot& slot = RunOf(run);
  EMSIM_CHECK(slot.reserved >= n);
  slot.reserved -= n;
  reserved_total_ -= n;
}

void BlockCache::FlushStats() { occupancy_.Flush(sim_->Now()); }

void BlockCache::CheckInvariants() const {
  int64_t cached = 0;
  int64_t reserved = 0;
  for (const auto& slot : runs_) {
    cached += static_cast<int64_t>(slot.blocks.size());
    reserved += slot.reserved;
    EMSIM_CHECK(slot.reserved >= 0);
    for (size_t i = 0; i < slot.blocks.size(); ++i) {
      EMSIM_CHECK(slot.blocks[i] >= slot.next_consume);
      if (i > 0) {
        EMSIM_CHECK(slot.blocks[i - 1] < slot.blocks[i]);
      }
    }
  }
  EMSIM_CHECK_EQ(cached, cached_total_);
  EMSIM_CHECK_EQ(reserved, reserved_total_);
  EMSIM_CHECK(cached_total_ + reserved_total_ <= capacity_);
}

}  // namespace emsim::cache

#include "io/victim_chooser.h"

#include <cstddef>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "util/check.h"

namespace emsim::io {

namespace {

class RandomChooser final : public VictimChooser {
 public:
  int Choose(const Context& ctx, const std::vector<int>& candidates) override {
    EMSIM_CHECK(!candidates.empty());
    EMSIM_CHECK(ctx.rng != nullptr);
    return candidates[ctx.rng->UniformInt(candidates.size())];
  }
  const char* name() const override { return "random"; }
};

class RoundRobinChooser final : public VictimChooser {
 public:
  int Choose(const Context& ctx, const std::vector<int>& candidates) override {
    EMSIM_CHECK(!candidates.empty());
    int disk = ctx.layout->DiskOf(candidates.front());
    size_t& cursor = cursors_[disk];
    int pick = candidates[cursor % candidates.size()];
    ++cursor;
    return pick;
  }
  const char* name() const override { return "round-robin"; }

 private:
  std::unordered_map<int, size_t> cursors_;
};

class FewestBufferedChooser final : public VictimChooser {
 public:
  int Choose(const Context& ctx, const std::vector<int>& candidates) override {
    EMSIM_CHECK(!candidates.empty());
    int best = candidates.front();
    int64_t best_buffered = std::numeric_limits<int64_t>::max();
    for (int r : candidates) {
      int64_t buffered = ctx.cache->CachedForRun(r) + ctx.cache->InFlightForRun(r);
      if (buffered < best_buffered) {
        best_buffered = buffered;
        best = r;
      }
    }
    return best;
  }
  const char* name() const override { return "fewest-buffered"; }
};

class NearestHeadChooser final : public VictimChooser {
 public:
  int Choose(const Context& ctx, const std::vector<int>& candidates) override {
    EMSIM_CHECK(!candidates.empty());
    if (ctx.disks == nullptr) {
      return candidates.front();
    }
    int best = candidates.front();
    int64_t best_dist = std::numeric_limits<int64_t>::max();
    for (int r : candidates) {
      int disk_id = ctx.layout->DiskOf(r);
      int64_t next = (*ctx.runs)[r].next_fetch_offset;
      int64_t cyl = ctx.layout->CylinderOf(r, next);
      int64_t head = ctx.disks->disk(disk_id).mechanism().current_cylinder();
      int64_t dist = cyl > head ? cyl - head : head - cyl;
      if (dist < best_dist) {
        best_dist = dist;
        best = r;
      }
    }
    return best;
  }
  const char* name() const override { return "nearest-head"; }
};

class ClairvoyantChooser final : public VictimChooser {
 public:
  int Choose(const Context& ctx, const std::vector<int>& candidates) override {
    EMSIM_CHECK(!candidates.empty());
    EMSIM_CHECK(ctx.depletion_trace != nullptr &&
                "clairvoyant choice needs a depletion trace");
    BuildIndex(ctx);
    int best = candidates.front();
    int64_t best_when = std::numeric_limits<int64_t>::max();
    for (int r : candidates) {
      // The next unrequested block of run r is its next_fetch_offset-th
      // block, depleted at that occurrence of r in the trace.
      int64_t block = (*ctx.runs)[r].next_fetch_offset;
      const auto& occurrences = occurrences_[static_cast<size_t>(r)];
      EMSIM_CHECK(block < static_cast<int64_t>(occurrences.size()));
      int64_t when = occurrences[static_cast<size_t>(block)];
      if (when < best_when) {
        best_when = when;
        best = r;
      }
    }
    return best;
  }
  const char* name() const override { return "clairvoyant"; }

 private:
  void BuildIndex(const Context& ctx) {
    if (!occurrences_.empty()) {
      return;
    }
    occurrences_.resize(static_cast<size_t>(ctx.runs->size()));
    const std::vector<int>& trace = *ctx.depletion_trace;
    for (int64_t t = 0; t < static_cast<int64_t>(trace.size()); ++t) {
      occurrences_[static_cast<size_t>(trace[static_cast<size_t>(t)])].push_back(t);
    }
  }

  /// occurrences_[run][b] = trace position at which run's b-th block
  /// depletes.
  std::vector<std::vector<int64_t>> occurrences_;
};

}  // namespace

std::unique_ptr<VictimChooser> MakeRandomVictimChooser() {
  return std::make_unique<RandomChooser>();
}
std::unique_ptr<VictimChooser> MakeRoundRobinVictimChooser() {
  return std::make_unique<RoundRobinChooser>();
}
std::unique_ptr<VictimChooser> MakeFewestBufferedVictimChooser() {
  return std::make_unique<FewestBufferedChooser>();
}
std::unique_ptr<VictimChooser> MakeNearestHeadVictimChooser() {
  return std::make_unique<NearestHeadChooser>();
}

std::unique_ptr<VictimChooser> MakeClairvoyantVictimChooser() {
  return std::make_unique<ClairvoyantChooser>();
}

}  // namespace emsim::io

#ifndef EMSIM_IO_RETRY_H_
#define EMSIM_IO_RETRY_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "disk/array.h"
#include "disk/disk.h"
#include "fault/fault_plan.h"
#include "fault/health.h"
#include "obs/metrics.h"
#include "sim/simulation.h"

namespace emsim::io {

/// Cumulative recovery counters maintained by the retry driver.
struct RetryStats {
  uint64_t timeouts = 0;           ///< Attempts abandoned while queued.
  uint64_t retries = 0;            ///< Re-submissions (after error or timeout).
  uint64_t permanent_failures = 0; ///< Requests that exhausted every retry.
  double backoff_ms = 0.0;         ///< Total simulated backoff wait.
};

/// Fault-aware submission path between the merge engine and the disk array.
/// Each request becomes a job: every attempt carries a fresh progress cell
/// and an error handler; a timeout watchdog abandons attempts stuck in a
/// queue (a fail-stopped disk) and re-submits after exponential backoff;
/// injected media errors re-submit the same way. Outcomes feed the
/// HealthTracker so planners can route the fan-out around sick disks. A job
/// that exhausts `policy.max_retries` re-submissions invokes
/// `on_permanent_failure` — the engine decides whether the merge can degrade
/// further or must surface a Status.
///
/// Everything runs on simulated time inside the single-threaded kernel:
/// retry schedules are ScheduleCallback events, so trials with identical
/// seeds and fault plans replay identically.
class FetchRetryDriver {
 public:
  /// `metrics` may be null; when set, the driver registers "fault.retries",
  /// "fault.timeouts" counters and the "fault.backoff_ms" gauge.
  FetchRetryDriver(sim::Simulation* sim, disk::DiskArray* disks, fault::HealthTracker* health,
                   fault::RetryPolicy policy, obs::MetricsRegistry* metrics);

  FetchRetryDriver(const FetchRetryDriver&) = delete;
  FetchRetryDriver& operator=(const FetchRetryDriver&) = delete;

  /// Submits `request` to `disk` under the retry policy. The request's
  /// on_block/on_complete fire exactly once, on the first attempt that
  /// succeeds; a successful completion also clears the disk's failure
  /// streak. The caller must leave `request.on_error` and
  /// `request.progress` empty — the driver owns both.
  void Submit(int disk, disk::DiskRequest request);

  /// Invoked when a request exhausts every retry (with the disk it was last
  /// submitted to). The driver itself takes no further action for the job.
  std::function<void(int disk, const disk::DiskRequest& request)> on_permanent_failure;

  const RetryStats& stats() const { return stats_; }

 private:
  struct Job {
    int disk = 0;
    disk::DiskRequest request;  ///< Template: callbacks copied per attempt.
    int attempts = 0;
  };

  void Attempt(const std::shared_ptr<Job>& job);
  void ArmTimeout(const std::shared_ptr<Job>& job,
                  const std::shared_ptr<disk::RequestProgress>& progress);
  void HandleFailure(const std::shared_ptr<Job>& job);

  sim::Simulation* sim_;
  disk::DiskArray* disks_;
  fault::HealthTracker* health_;
  fault::RetryPolicy policy_;
  RetryStats stats_;
  obs::Counter* metric_retries_ = nullptr;
  obs::Counter* metric_timeouts_ = nullptr;
  obs::Gauge* metric_backoff_ms_ = nullptr;
};

}  // namespace emsim::io

#endif  // EMSIM_IO_RETRY_H_

#ifndef EMSIM_CORE_DEPLETION_H_
#define EMSIM_CORE_DEPLETION_H_

#include <memory>
#include <vector>

#include "io/run_state.h"
#include "util/rng.h"

namespace emsim::core {

/// Chooses which run loses its leading block at each merge step. The paper
/// (following Kwan & Baer) models depletion as uniformly random over the
/// runs that still hold unmerged blocks; implementations must only return
/// such runs.
class DepletionModel {
 public:
  virtual ~DepletionModel() = default;

  /// Returns the run to deplete next. Called exactly once per merged block;
  /// `runs` reflects consumption *before* this depletion.
  virtual int Next(const io::RunStates& runs, Rng& rng) = 0;

  virtual const char* name() const = 0;
};

/// Uniform random choice among active runs (the paper's model).
std::unique_ptr<DepletionModel> MakeUniformDepletion(int num_runs);

/// Zipf-skewed choice: active runs keep their rank order by id; rank 0 is
/// hottest. theta = 0 degenerates to uniform.
std::unique_ptr<DepletionModel> MakeZipfDepletion(int num_runs, double theta);

/// Replays a fixed depletion sequence (e.g. extracted from a real merge of
/// sorted data by extsort::BuildDepletionTrace).
std::unique_ptr<DepletionModel> MakeTraceDepletion(std::vector<int> trace);

}  // namespace emsim::core

#endif  // EMSIM_CORE_DEPLETION_H_

file(REMOVE_RECURSE
  "CMakeFiles/extsort_sort_test.dir/extsort_sort_test.cc.o"
  "CMakeFiles/extsort_sort_test.dir/extsort_sort_test.cc.o.d"
  "extsort_sort_test"
  "extsort_sort_test.pdb"
  "extsort_sort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extsort_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef EMSIM_UTIL_INLINE_VEC_H_
#define EMSIM_UTIL_INLINE_VEC_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>

#include "util/check.h"

namespace emsim {

/// Small-buffer vector for the kernel's waiter lists: the first `N` elements
/// live inline (no heap), growth beyond that moves to the heap. Waiter lists
/// on Event/Signal/Semaphore hold 0–2 entries almost all of the time, so the
/// common case never allocates. Restricted to trivially copyable element
/// types (coroutine handles, pointers) so growth and moves are memcpy.
template <typename T, std::size_t N>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec is for trivially copyable elements (handles, pointers)");
  static_assert(N >= 1, "inline capacity must be at least 1");

 public:
  InlineVec() = default;

  InlineVec(const InlineVec&) = delete;
  InlineVec& operator=(const InlineVec&) = delete;

  /// Steals the other vector's contents, leaving it empty (used by
  /// Signal::Fire to detach the current waiter generation in O(1) when the
  /// list has spilled to the heap).
  InlineVec(InlineVec&& other) noexcept {
    if (other.OnHeap()) {
      data_ = other.data_;
      capacity_ = other.capacity_;
    } else {
      std::memcpy(InlineData(), other.InlineData(), other.size_ * sizeof(T));
    }
    size_ = other.size_;
    other.data_ = nullptr;
    other.capacity_ = static_cast<uint32_t>(N);
    other.size_ = 0;
  }
  InlineVec& operator=(InlineVec&&) = delete;

  ~InlineVec() {
    if (OnHeap()) {
      ::operator delete(data_);
    }
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(T value) {
    if (size_ == capacity_) {
      Grow();
    }
    Data()[size_++] = value;
  }

  void pop_back() {
    EMSIM_DCHECK(size_ > 0);
    --size_;
  }

  T& operator[](std::size_t i) {
    EMSIM_DCHECK(i < size_);
    return Data()[i];
  }
  const T& operator[](std::size_t i) const {
    EMSIM_DCHECK(i < size_);
    return Data()[i];
  }

  /// Keeps any heap buffer for reuse — waiter lists refill constantly.
  void clear() { size_ = 0; }

  T* begin() { return Data(); }
  T* end() { return Data() + size_; }
  const T* begin() const { return Data(); }
  const T* end() const { return Data() + size_; }

 private:
  bool OnHeap() const { return data_ != nullptr; }
  T* InlineData() { return reinterpret_cast<T*>(inline_storage_); }
  const T* InlineData() const { return reinterpret_cast<const T*>(inline_storage_); }
  T* Data() { return OnHeap() ? data_ : InlineData(); }
  const T* Data() const { return OnHeap() ? data_ : InlineData(); }

  void Grow() {
    uint32_t new_capacity = capacity_ * 2;
    T* heap = static_cast<T*>(::operator new(new_capacity * sizeof(T)));
    std::memcpy(heap, Data(), size_ * sizeof(T));
    if (OnHeap()) {
      ::operator delete(data_);
    }
    data_ = heap;
    capacity_ = new_capacity;
  }

  T* data_ = nullptr;  // Null while the inline buffer is in use.
  uint32_t size_ = 0;
  uint32_t capacity_ = static_cast<uint32_t>(N);
  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
};

/// Small-buffer FIFO ring for the kernel's handoff queues (Semaphore and
/// Mailbox waiters): pop_front is O(1) with no shifting, and the first `N`
/// entries live inline. Same trivially-copyable restriction as InlineVec.
template <typename T, std::size_t N>
class InlineQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineQueue is for trivially copyable elements (handles, pointers)");
  static_assert(N >= 1, "inline capacity must be at least 1");

 public:
  InlineQueue() = default;

  InlineQueue(const InlineQueue&) = delete;
  InlineQueue& operator=(const InlineQueue&) = delete;

  ~InlineQueue() {
    if (OnHeap()) {
      ::operator delete(data_);
    }
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(T value) {
    if (size_ == capacity_) {
      Grow();
    }
    Data()[(head_ + size_) % capacity_] = value;
    ++size_;
  }

  T& front() {
    EMSIM_DCHECK(size_ > 0);
    return Data()[head_];
  }

  void pop_front() {
    EMSIM_DCHECK(size_ > 0);
    head_ = (head_ + 1) % capacity_;
    --size_;
  }

 private:
  bool OnHeap() const { return data_ != nullptr; }
  T* InlineData() { return reinterpret_cast<T*>(inline_storage_); }
  T* Data() { return OnHeap() ? data_ : InlineData(); }

  void Grow() {
    uint32_t new_capacity = capacity_ * 2;
    T* heap = static_cast<T*>(::operator new(new_capacity * sizeof(T)));
    // Linearize the ring while copying so head_ restarts at zero.
    T* old = Data();
    for (uint32_t i = 0; i < size_; ++i) {
      heap[i] = old[(head_ + i) % capacity_];
    }
    if (OnHeap()) {
      ::operator delete(data_);
    }
    data_ = heap;
    capacity_ = new_capacity;
    head_ = 0;
  }

  T* data_ = nullptr;  // Null while the inline buffer is in use.
  uint32_t head_ = 0;
  uint32_t size_ = 0;
  uint32_t capacity_ = static_cast<uint32_t>(N);
  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
};

}  // namespace emsim

#endif  // EMSIM_UTIL_INLINE_VEC_H_

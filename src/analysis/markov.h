#ifndef EMSIM_ANALYSIS_MARKOV_H_
#define EMSIM_ANALYSIS_MARKOV_H_

#include <map>

namespace emsim::analysis {

/// Steady-state Markov model of inter-run prefetching for the setting the
/// paper's companion report (Pai, Schaffer & Varman, TR-9108) analyzes:
/// D disks with ONE run per disk, unit fetches (N = 1), and a cache of C
/// block frames. The merge depletes a uniformly random run each step; when
/// the depleted run has no cached block an I/O operation occurs and the
/// admission policy decides how many disks participate:
///
///  * Conservative (the paper's choice): prefetch one block from EVERY disk
///    if all D fit in the free frames, else fetch only the demand block.
///  * Greedy: fetch the demand block plus prefetches on as many other disks
///    as free frames allow (chosen uniformly).
///
/// The chain's state is the multiset of per-run cached-block counts; the
/// model computes the stationary distribution by power iteration and
/// reports the average I/O parallelism (disks used per I/O operation) —
/// the quantity the paper says favors the conservative policy.
class MarkovPrefetchModel {
 public:
  enum class Policy {
    kConservative,
    kGreedy,
  };

  /// `num_disks` >= 1 runs/disks, cache of `cache_blocks` >= 1 frames.
  /// State spaces grow as compositions of C into D parts; keep D <= 8 and
  /// C <= 64 for sub-second solves.
  MarkovPrefetchModel(int num_disks, int cache_blocks);

  /// Average number of disks participating per I/O operation under the
  /// stationary distribution.
  double AverageParallelism(Policy policy) const;

  /// Fraction of I/O operations that fetch from all D disks (the model's
  /// success ratio).
  double SuccessRatio(Policy policy) const;

  /// Expected per-I/O-step cached-block total at steady state.
  double MeanOccupancy(Policy policy) const;

  int num_disks() const { return d_; }
  int cache_blocks() const { return c_; }

 private:
  struct Solution {
    double parallelism = 0;
    double success = 0;
    double occupancy = 0;
  };

  Solution Solve(Policy policy) const;

  int d_;
  int c_;
  mutable std::map<int, Solution> cache_;  // Keyed by static_cast<int>(policy).
};

}  // namespace emsim::analysis

#endif  // EMSIM_ANALYSIS_MARKOV_H_

#include "sweep/subprocess.h"

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "util/str.h"

namespace emsim::sweep {

Subprocess::~Subprocess() {
  if (running()) {
    Kill();
    // Blocking reap on teardown only: the child was just SIGKILLed, so this
    // cannot hang, and it keeps destruction zombie-free.
    int status = 0;
    (void)waitpid(pid_, &status, 0);
    done_ = true;
  }
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_), done_(other.done_), signaled_(other.signaled_),
      exit_code_(other.exit_code_) {
  other.pid_ = -1;
  other.done_ = false;
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    this->~Subprocess();
    pid_ = other.pid_;
    done_ = other.done_;
    signaled_ = other.signaled_;
    exit_code_ = other.exit_code_;
    other.pid_ = -1;
    other.done_ = false;
  }
  return *this;
}

Result<Subprocess> Subprocess::Start(const std::vector<std::string>& argv) {
  if (argv.empty()) {
    return Status::InvalidArgument("subprocess: empty argv");
  }
  std::vector<char*> c_argv;
  c_argv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    c_argv.push_back(const_cast<char*>(arg.c_str()));
  }
  c_argv.push_back(nullptr);

  pid_t pid = fork();
  if (pid < 0) {
    return Status::Internal("subprocess: fork failed");
  }
  if (pid == 0) {
    execvp(c_argv[0], c_argv.data());
    _exit(127);  // exec failed; 127 matches the shell convention.
  }
  Subprocess child;
  child.pid_ = pid;
  return child;
}

bool Subprocess::Poll() {
  if (done_) {
    return true;
  }
  if (pid_ <= 0) {
    return false;
  }
  int status = 0;
  pid_t got = waitpid(pid_, &status, WNOHANG);
  if (got != pid_) {
    return false;
  }
  done_ = true;
  if (WIFSIGNALED(status)) {
    signaled_ = true;
    exit_code_ = WTERMSIG(status);
  } else {
    exit_code_ = WEXITSTATUS(status);
  }
  return true;
}

void Subprocess::Kill() {
  if (running()) {
    (void)kill(pid_, SIGKILL);
  }
}

std::string Subprocess::DescribeExit() const {
  if (!done_) {
    return "still running";
  }
  return StrFormat(signaled_ ? "signal %d" : "exit %d", exit_code_);
}

}  // namespace emsim::sweep

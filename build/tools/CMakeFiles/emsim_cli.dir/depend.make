# Empty dependencies file for emsim_cli.
# This may be replaced when dependencies are built.

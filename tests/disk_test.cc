#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "disk/array.h"
#include "disk/disk.h"
#include "disk/disk_params.h"
#include "disk/geometry.h"
#include "disk/layout.h"
#include "disk/mechanism.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace emsim::disk {
namespace {

TEST(GeometryTest, PaperDerivedValues) {
  Geometry g;  // Defaults = the paper's drive.
  EXPECT_EQ(g.SectorsPerBlock(), 8);
  EXPECT_EQ(g.BlocksPerCylinder(), 104);
  EXPECT_EQ(g.TotalBlocks(), 104 * 625);
  EXPECT_EQ(g.CylinderOf(0), 0);
  EXPECT_EQ(g.CylinderOf(103), 0);
  EXPECT_EQ(g.CylinderOf(104), 1);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GeometryTest, ValidationCatchesBadShapes) {
  Geometry g;
  g.block_bytes = 4000;  // Not a sector multiple.
  EXPECT_FALSE(g.Validate().ok());
  g = Geometry{};
  g.heads = 0;
  EXPECT_FALSE(g.Validate().ok());
  g = Geometry{};
  g.block_bytes = 1 << 20;  // Bigger than a cylinder.
  EXPECT_FALSE(g.Validate().ok());
}

TEST(DiskParamsTest, PaperTimings) {
  DiskParams p = DiskParams::Paper();
  EXPECT_NEAR(p.TransferMsPerBlock(), 2.5641, 1e-4);
  EXPECT_NEAR(p.MeanRotationalLatencyMs(), 8.3333, 1e-4);
  EXPECT_DOUBLE_EQ(p.seek_ms_per_cylinder, 0.01);
  EXPECT_TRUE(p.Validate().ok());
}

TEST(DiskParamsTest, SeekIsLinearWithZeroAtNoMove) {
  DiskParams p;
  EXPECT_DOUBLE_EQ(p.SeekMs(0), 0.0);
  EXPECT_DOUBLE_EQ(p.SeekMs(100), 1.0);
  EXPECT_DOUBLE_EQ(p.SeekMs(-100), 1.0);
  p.seek_settle_ms = 0.5;
  EXPECT_DOUBLE_EQ(p.SeekMs(1), 0.51);
  EXPECT_DOUBLE_EQ(p.SeekMs(0), 0.0);  // Settle only applies when moving.
}

TEST(MechanismTest, FixedRotationCosts) {
  DiskParams p;
  p.rotation = RotationalLatencyModel::kFixedMean;
  Mechanism mech(p);
  Rng rng(1);
  AccessCost c = mech.Access(0, 1, rng);
  EXPECT_DOUBLE_EQ(c.seek_ms, 0.0);  // Head starts at cylinder 0.
  EXPECT_NEAR(c.rotation_ms, 8.3333, 1e-4);
  EXPECT_NEAR(c.transfer_ms, 2.5641, 1e-4);

  // Move to cylinder 10 (block 1040): 10 cylinders of seek.
  c = mech.Access(1040, 4, rng);
  EXPECT_EQ(c.seek_cylinders, 10);
  EXPECT_NEAR(c.seek_ms, 0.1, 1e-9);
  EXPECT_NEAR(c.transfer_ms, 4 * 2.5641, 1e-3);
  EXPECT_EQ(mech.current_cylinder(), 10);
}

TEST(MechanismTest, UniformRotationHasMeanR) {
  DiskParams p;
  p.rotation = RotationalLatencyModel::kUniform;
  Mechanism mech(p);
  Rng rng(7);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    AccessCost c = mech.Access(0, 1, rng);
    EXPECT_GE(c.rotation_ms, 0.0);
    EXPECT_LT(c.rotation_ms, p.revolution_ms);
    sum += c.rotation_ms;
  }
  EXPECT_NEAR(sum / n, p.MeanRotationalLatencyMs(), 0.1);
}

TEST(MechanismTest, SequentialOptimizationSkipsPositioning) {
  DiskParams p;
  p.sequential_optimization = true;
  p.rotation = RotationalLatencyModel::kFixedMean;
  Mechanism mech(p);
  Rng rng(1);
  mech.Access(0, 10, rng);
  AccessCost c = mech.Access(10, 5, rng);  // Continues where we stopped.
  EXPECT_TRUE(c.sequential);
  EXPECT_DOUBLE_EQ(c.PositioningMs(), 0.0);
  // A gap breaks sequentiality.
  c = mech.Access(30, 1, rng);
  EXPECT_FALSE(c.sequential);
  EXPECT_GT(c.rotation_ms, 0.0);
}

TEST(MechanismTest, PaperModelChargesRotationEvenWithoutSeek) {
  DiskParams p;  // sequential_optimization off by default (the paper's model).
  p.rotation = RotationalLatencyModel::kFixedMean;
  Mechanism mech(p);
  Rng rng(1);
  mech.Access(0, 10, rng);
  AccessCost c = mech.Access(10, 5, rng);
  EXPECT_FALSE(c.sequential);
  EXPECT_EQ(c.seek_cylinders, 0);
  EXPECT_NEAR(c.rotation_ms, 8.3333, 1e-4);
}

TEST(MechanismTest, BlockAngles) {
  DiskParams p;
  Mechanism mech(p);
  EXPECT_DOUBLE_EQ(mech.BlockAngle(0), 0.0);
  EXPECT_DOUBLE_EQ(mech.BlockAngle(1), 8.0 / 52);
  EXPECT_DOUBLE_EQ(mech.BlockAngle(6), 48.0 / 52);
  EXPECT_DOUBLE_EQ(mech.BlockAngle(7), 4.0 / 52);     // Wraps the track.
  EXPECT_DOUBLE_EQ(mech.BlockAngle(104), 0.0);        // Next cylinder restarts.
}

TEST(MechanismTest, AngularModelSequentialIsFree) {
  DiskParams p;
  p.rotation = RotationalLatencyModel::kAngular;
  Mechanism mech(p);
  Rng rng(1);
  double t = p.TransferMsPerBlock();
  AccessCost first = mech.Access(0, 2, rng, /*now_ms=*/0.0);
  EXPECT_DOUBLE_EQ(first.rotation_ms, 0.0);  // Sector 0 is under the head at t=0.
  // The platter has rotated exactly past blocks 0 and 1; block 2 starts now.
  AccessCost second = mech.Access(2, 1, rng, /*now_ms=*/2 * t);
  EXPECT_NEAR(second.rotation_ms, 0.0, 1e-9);
}

TEST(MechanismTest, AngularModelRereadWaitsFullRevolution) {
  DiskParams p;
  p.rotation = RotationalLatencyModel::kAngular;
  Mechanism mech(p);
  Rng rng(1);
  double t = p.TransferMsPerBlock();
  mech.Access(0, 1, rng, 0.0);
  AccessCost again = mech.Access(0, 1, rng, /*now_ms=*/t);
  EXPECT_NEAR(again.rotation_ms, p.revolution_ms - t, 1e-9);
}

TEST(MechanismTest, AngularModelMeanNearHalfRevolutionForRandomArrivals) {
  DiskParams p;
  p.rotation = RotationalLatencyModel::kAngular;
  Mechanism mech(p);
  Rng rng(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double now = rng.UniformDouble(0, 1000.0);
    int64_t block = static_cast<int64_t>(rng.UniformInt(60000));
    AccessCost c = mech.Access(block, 1, rng, now);
    EXPECT_GE(c.rotation_ms, 0.0);
    EXPECT_LT(c.rotation_ms, p.revolution_ms);
    sum += c.rotation_ms;
  }
  EXPECT_NEAR(sum / n, p.MeanRotationalLatencyMs(), 0.2);
}

TEST(MechanismTest, SeekDistanceQuery) {
  DiskParams p;
  Mechanism mech(p);
  Rng rng(1);
  EXPECT_EQ(mech.SeekDistanceTo(104 * 20), 20);
  mech.Access(104 * 20, 1, rng);
  EXPECT_EQ(mech.SeekDistanceTo(104 * 15), 5);
}

TEST(RunLayoutTest, RoundRobinPlacement) {
  RunLayout::Options opt;
  opt.num_runs = 25;
  opt.num_disks = 5;
  opt.blocks_per_run = 1000;
  RunLayout layout(opt);
  EXPECT_TRUE(layout.Validate().ok());
  EXPECT_EQ(layout.DiskOf(0), 0);
  EXPECT_EQ(layout.DiskOf(7), 2);
  EXPECT_EQ(layout.IndexOnDisk(7), 1);
  EXPECT_EQ(layout.RunsOnDisk(0), 5);
  EXPECT_EQ(layout.LocalBlock(7, 3), 1003);
  EXPECT_EQ(layout.CylinderOf(0, 0), 0);
  EXPECT_EQ(layout.CylinderOf(5, 0), 1000 / 104);  // Second run on disk 0.
  EXPECT_NEAR(layout.RunLengthCylinders(), 9.6154, 1e-4);
  EXPECT_EQ(layout.TotalBlocks(), 25000);
}

TEST(RunLayoutTest, BlockedPlacement) {
  RunLayout::Options opt;
  opt.num_runs = 10;
  opt.num_disks = 2;
  opt.blocks_per_run = 100;
  opt.placement = RunPlacement::kBlocked;
  RunLayout layout(opt);
  EXPECT_EQ(layout.DiskOf(0), 0);
  EXPECT_EQ(layout.DiskOf(4), 0);
  EXPECT_EQ(layout.DiskOf(5), 1);
  EXPECT_EQ(layout.IndexOnDisk(5), 0);
  EXPECT_EQ(layout.RunsOnDisk(1), 5);
}

TEST(RunLayoutTest, UnevenRunsPerDisk) {
  RunLayout::Options opt;
  opt.num_runs = 7;
  opt.num_disks = 3;
  opt.blocks_per_run = 10;
  RunLayout layout(opt);
  EXPECT_EQ(layout.RunsOnDisk(0), 3);  // Runs 0, 3, 6.
  EXPECT_EQ(layout.RunsOnDisk(1), 2);
  EXPECT_EQ(layout.RunsOnDisk(2), 2);
  int total = 0;
  for (int d = 0; d < 3; ++d) {
    total += layout.RunsOnDisk(d);
  }
  EXPECT_EQ(total, 7);
}

TEST(RunLayoutTest, VariableLengthRuns) {
  RunLayout::Options opt;
  opt.num_runs = 4;
  opt.num_disks = 2;
  opt.blocks_per_run = 100;  // Ignored given run_blocks.
  opt.run_blocks = {10, 20, 30, 40};
  RunLayout layout(opt);
  EXPECT_EQ(layout.TotalBlocks(), 100);
  EXPECT_EQ(layout.RunBlocks(2), 30);
  // Disk 0 holds runs 0 and 2: run 2 starts after run 0's 10 blocks.
  EXPECT_EQ(layout.LocalBlock(0, 0), 0);
  EXPECT_EQ(layout.LocalBlock(2, 0), 10);
  EXPECT_EQ(layout.LocalBlock(2, 29), 39);
  // Disk 1 holds runs 1 and 3.
  EXPECT_EQ(layout.LocalBlock(1, 0), 0);
  EXPECT_EQ(layout.LocalBlock(3, 5), 25);
}

TEST(RunLayoutTest, StripedLocations) {
  RunLayout::Options opt;
  opt.num_runs = 4;
  opt.num_disks = 2;
  opt.blocks_per_run = 10;
  opt.placement = RunPlacement::kStriped;
  RunLayout layout(opt);
  EXPECT_TRUE(layout.Validate().ok());
  EXPECT_TRUE(layout.striped());
  // Block o of run r: disk o%2, local r*5 + o/2.
  EXPECT_EQ(layout.Locate(0, 0).disk, 0);
  EXPECT_EQ(layout.Locate(0, 0).local_block, 0);
  EXPECT_EQ(layout.Locate(0, 1).disk, 1);
  EXPECT_EQ(layout.Locate(0, 1).local_block, 0);
  EXPECT_EQ(layout.Locate(0, 4).disk, 0);
  EXPECT_EQ(layout.Locate(0, 4).local_block, 2);
  EXPECT_EQ(layout.Locate(3, 9).disk, 1);
  EXPECT_EQ(layout.Locate(3, 9).local_block, 3 * 5 + 4);
}

TEST(RunLayoutTest, StripedSpansCoverEveryOffsetOnce) {
  RunLayout::Options opt;
  opt.num_runs = 2;
  opt.num_disks = 3;
  opt.blocks_per_run = 12;
  opt.placement = RunPlacement::kStriped;
  RunLayout layout(opt);
  for (int64_t offset : {0, 1, 2, 5}) {
    for (int64_t n : {1, 2, 3, 4, 7}) {
      auto spans = layout.Spans(1, offset, n);
      std::vector<int64_t> covered;
      for (const auto& span : spans) {
        EXPECT_GE(span.nblocks, 1);
        for (int64_t i = 0; i < span.nblocks; ++i) {
          int64_t o = span.first_offset + i * span.offset_stride;
          covered.push_back(o);
          // The span's physical blocks are where Locate says.
          auto loc = layout.Locate(1, o);
          EXPECT_EQ(loc.disk, span.disk);
          EXPECT_EQ(loc.local_block, span.local_start + i);
        }
      }
      std::sort(covered.begin(), covered.end());
      ASSERT_EQ(covered.size(), static_cast<size_t>(n)) << "offset=" << offset;
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(covered[static_cast<size_t>(i)], offset + i);
      }
    }
  }
}

TEST(RunLayoutTest, ContiguousSpanIsSingle) {
  RunLayout::Options opt;
  opt.num_runs = 6;
  opt.num_disks = 3;
  opt.blocks_per_run = 100;
  RunLayout layout(opt);
  auto spans = layout.Spans(4, 20, 10);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].disk, layout.DiskOf(4));
  EXPECT_EQ(spans[0].local_start, layout.LocalBlock(4, 20));
  EXPECT_EQ(spans[0].nblocks, 10);
  EXPECT_EQ(spans[0].offset_stride, 1);
}

TEST(RunLayoutTest, StripedValidation) {
  RunLayout::Options opt;
  opt.num_runs = 4;
  opt.num_disks = 3;
  opt.blocks_per_run = 10;  // Not divisible by 3.
  opt.placement = RunPlacement::kStriped;
  EXPECT_FALSE(RunLayout(opt).Validate().ok());
  opt.blocks_per_run = 12;
  EXPECT_TRUE(RunLayout(opt).Validate().ok());
}

TEST(RunLayoutTest, OverflowDetected) {
  RunLayout::Options opt;
  opt.num_runs = 10;
  opt.num_disks = 1;
  opt.blocks_per_run = 10000;  // 100k blocks >> 65k capacity.
  RunLayout layout(opt);
  EXPECT_FALSE(layout.Validate().ok());
}

struct Served {
  int64_t block;
  double completed_at;
};

TEST(DiskServerTest, FcfsOrderAndPerBlockDelivery) {
  sim::Simulation sim;
  DiskParams params;
  params.rotation = RotationalLatencyModel::kFixedMean;
  Disk disk(&sim, params, 0, /*seed=*/1);
  disk.Start();

  std::vector<Served> served;
  std::vector<double> block_times;
  auto submit = [&](int64_t start, int n) {
    DiskRequest req;
    req.start_block = start;
    req.nblocks = n;
    req.on_block = [&block_times, &sim](int) { block_times.push_back(sim.Now()); };
    req.on_complete = [&served, &sim, start] { served.push_back({start, sim.Now()}); };
    disk.Submit(req);
  };
  sim.ScheduleCallback(0, [&] {
    submit(0, 2);
    submit(1040, 1);  // Queued behind the first.
  });
  sim.Run();

  ASSERT_EQ(served.size(), 2u);
  EXPECT_EQ(served[0].block, 0);
  EXPECT_EQ(served[1].block, 1040);
  // First request: R + 2T; second: +seek(10cyl) + R + T.
  double t = params.TransferMsPerBlock();
  double r = params.MeanRotationalLatencyMs();
  EXPECT_NEAR(served[0].completed_at, r + 2 * t, 1e-9);
  EXPECT_NEAR(served[1].completed_at, r + 2 * t + 0.1 + r + t, 1e-9);
  // Per-block deliveries: after each transfer.
  ASSERT_EQ(block_times.size(), 3u);
  EXPECT_NEAR(block_times[0], r + t, 1e-9);
  EXPECT_NEAR(block_times[1], r + 2 * t, 1e-9);

  const DiskStats& s = disk.stats();
  EXPECT_EQ(s.requests, 2u);
  EXPECT_EQ(s.blocks_transferred, 3u);
  EXPECT_EQ(s.seeks, 1u);
  EXPECT_EQ(s.seek_cylinders, 10);
}

TEST(DiskServerTest, SstfPicksNearestRequest) {
  sim::Simulation sim;
  DiskParams params;
  params.rotation = RotationalLatencyModel::kFixedMean;
  params.scheduling = SchedulingPolicy::kSstf;
  Disk disk(&sim, params, 0, 1);
  disk.Start();

  std::vector<int64_t> order;
  auto submit = [&](int64_t start) {
    DiskRequest req;
    req.start_block = start;
    req.nblocks = 1;
    req.on_complete = [&order, start] { order.push_back(start); };
    disk.Submit(req);
  };
  // While the disk serves block 0, queue far then near; SSTF should take the
  // near one first.
  sim.ScheduleCallback(0, [&] {
    submit(0);
    submit(104 * 100);  // Cylinder 100.
    submit(104 * 5);    // Cylinder 5.
  });
  sim.Run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 104 * 5);
  EXPECT_EQ(order[2], 104 * 100);
}

TEST(DiskServerTest, BusyObserverFires) {
  sim::Simulation sim;
  DiskParams params;
  Disk disk(&sim, params, 3, 1);
  std::vector<std::pair<int, bool>> transitions;
  disk.on_busy_changed = [&](int id, bool busy) { transitions.push_back({id, busy}); };
  disk.Start();
  DiskRequest req;
  req.start_block = 0;
  req.nblocks = 1;
  sim.ScheduleCallback(0, [&] { disk.Submit(req); });
  sim.Run();
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], (std::pair<int, bool>{3, true}));
  EXPECT_EQ(transitions[1], (std::pair<int, bool>{3, false}));
}

sim::Process SubmitAt(sim::Simulation& /*sim*/, DiskArray& array, int disk, double at,
                      int64_t block, int nblocks) {
  co_await sim::Delay(at);
  DiskRequest req;
  req.start_block = block;
  req.nblocks = nblocks;
  array.Submit(disk, req);
}

TEST(DiskArrayTest, ConcurrencyStatistic) {
  sim::Simulation sim;
  DiskArray::Options opt;
  opt.params.rotation = RotationalLatencyModel::kFixedMean;
  opt.num_disks = 2;
  DiskArray array(&sim, opt);
  array.Start();
  // Two equal requests at t=0 on different disks: concurrency 2 while busy.
  sim.Spawn(SubmitAt(sim, array, 0, 0, 0, 4));
  sim.Spawn(SubmitAt(sim, array, 1, 0, 0, 4));
  sim.Run();
  array.FlushStats();
  EXPECT_NEAR(array.MeanConcurrencyWhileActive(), 2.0, 1e-9);
  EXPECT_EQ(array.TotalStats().requests, 2u);
  EXPECT_EQ(array.TotalStats().blocks_transferred, 8u);
}

TEST(DiskArrayTest, SerializedRequestsHaveConcurrencyOne) {
  sim::Simulation sim;
  DiskArray::Options opt;
  opt.params.rotation = RotationalLatencyModel::kFixedMean;
  opt.num_disks = 2;
  DiskArray array(&sim, opt);
  array.Start();
  double service = opt.params.MeanRotationalLatencyMs() + opt.params.TransferMsPerBlock();
  sim.Spawn(SubmitAt(sim, array, 0, 0.0, 0, 1));
  sim.Spawn(SubmitAt(sim, array, 1, service + 1.0, 0, 1));  // After the first ends.
  sim.Run();
  array.FlushStats();
  EXPECT_NEAR(array.MeanConcurrencyWhileActive(), 1.0, 1e-9);
  EXPECT_LT(array.ActiveFraction(), 1.0);
}

}  // namespace
}  // namespace emsim::disk

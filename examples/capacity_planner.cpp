// Capacity planner: the inverse problem a practitioner actually faces —
// "I must merge k runs within a time budget; how many disks, how deep a
// prefetch, and how much cache memory do I need?" Uses the analytic models
// to shortlist candidates and the simulator to confirm, searching the
// smallest cache meeting the target.
//
//   $ ./capacity_planner [--runs K] [--target SECONDS] [--max-disks D]

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "analysis/equations.h"
#include "analysis/model_params.h"
#include "core/config.h"
#include "core/experiment.h"
#include "stats/table.h"

using namespace emsim;

namespace {

struct Plan {
  int disks;
  int n;
  int64_t cache;
  double seconds;
  double success;
};

/// Smallest cache (binary search, in steps of k blocks) whose simulated time
/// meets `target_s`, or nullopt if even the ample cache misses it.
std::optional<Plan> PlanFor(int runs, int disks, int n, double target_s) {
  core::MergeConfig cfg = core::MergeConfig::Paper(
      runs, disks, n, core::Strategy::kAllDisksOneRun, core::SyncMode::kUnsynchronized);
  int64_t hi = cfg.EffectiveCacheBlocks();
  auto evaluate = [&](int64_t cache) {
    core::MergeConfig c = cfg;
    c.cache_blocks = cache;
    return core::RunTrials(c, 3);
  };
  auto at_hi = evaluate(hi);
  if (at_hi.MeanTotalSeconds() > target_s) {
    return std::nullopt;
  }
  int64_t lo = runs;  // Minimum legal cache.
  while (hi - lo > runs) {
    int64_t mid = lo + (hi - lo) / 2;
    if (evaluate(mid).MeanTotalSeconds() <= target_s) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  auto final_result = evaluate(hi);
  return Plan{disks, n, hi, final_result.MeanTotalSeconds(),
              final_result.MeanSuccessRatio()};
}

}  // namespace

int main(int argc, char** argv) {
  int runs = 25;
  double target_s = 25.0;
  int max_disks = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      runs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--target") == 0 && i + 1 < argc) {
      target_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-disks") == 0 && i + 1 < argc) {
      max_disks = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: capacity_planner [--runs K] [--target SECONDS] "
                   "[--max-disks D]\n");
      return 2;
    }
  }

  std::printf("planning: merge %d runs x 1000 blocks within %.1f s (<= %d disks)\n\n", runs,
              target_s, max_disks);

  // Analytic feasibility: even infinite cache and N cannot beat B*T/D.
  stats::Table feasibility({"disks", "transfer bound (s)", "eq.5 @ N=10 (s)", "feasible"});
  for (int d = 1; d <= max_disks; d = d < 5 ? d + 1 : d + 5) {
    analysis::ModelParams p = analysis::ModelParams::Paper(runs, d);
    double bound = analysis::TotalMs(p, analysis::LowerBoundPerBlockMultiDisk(p)) / 1e3;
    double eq5 = analysis::TotalMs(p, analysis::Eq5InterRunSync(p, 10)) / 1e3;
    feasibility.AddRow({stats::Table::Cell(d, 0), stats::Table::Cell(bound),
                        stats::Table::Cell(eq5), bound <= target_s ? "yes" : "no"});
  }
  std::printf("%s\n", feasibility.ToString().c_str());

  // Search: fewest disks first, then smallest cache.
  stats::Table plans({"disks", "N", "cache (blocks)", "cache (MB)", "time (s)", "success"});
  bool found = false;
  for (int d = 1; d <= max_disks && !found; ++d) {
    analysis::ModelParams p = analysis::ModelParams::Paper(runs, d);
    double bound = analysis::TotalMs(p, analysis::LowerBoundPerBlockMultiDisk(p)) / 1e3;
    if (bound > target_s) {
      continue;  // Analytically impossible; skip the simulation.
    }
    for (int n : {5, 10, 20, 30}) {
      auto plan = PlanFor(runs, d, n, target_s);
      if (plan.has_value()) {
        plans.AddRow({stats::Table::Cell(plan->disks, 0), stats::Table::Cell(plan->n, 0),
                      stats::Table::Cell(static_cast<double>(plan->cache), 0),
                      stats::Table::Cell(static_cast<double>(plan->cache * 4096) / 1e6, 1),
                      stats::Table::Cell(plan->seconds), stats::Table::Cell(plan->success, 3)});
        found = true;
      }
    }
  }
  if (!found) {
    std::printf("no configuration with <= %d disks meets %.1f s; the transfer bound "
                "rules it out or N up to 30 is insufficient.\n",
                max_disks, target_s);
    return 1;
  }
  std::printf("candidate plans (fewest disks, smallest cache meeting the target):\n%s",
              plans.ToString().c_str());
  std::printf("\npick the row with the fewest disks; cache sizes are the binary-search\n"
              "minimum, so budget some slack in production.\n");
  return 0;
}

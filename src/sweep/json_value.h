#ifndef EMSIM_SWEEP_JSON_VALUE_H_
#define EMSIM_SWEEP_JSON_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace emsim::sweep {

/// Parsed JSON value for the shard-artifact decoder. Design goals are
/// exactness and determinism, not generality: numbers keep both their
/// strtod double value and, when the token is integral, the exact 64-bit
/// magnitude, so every value emitted by stats::JsonWriter round-trips
/// bit-for-bit (JsonWriter's doubles are shortest-form strtod round-trips,
/// its integers plain digit strings). Object fields preserve insertion
/// order.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;        ///< strtod of the token (kNumber).
  uint64_t magnitude = 0;     ///< |integer| when is_integral (kNumber).
  bool is_integral = false;   ///< Token had no '.', 'e' or 'E'.
  bool is_negative = false;   ///< Token began with '-'.
  std::string string;         ///< kString payload (unescaped).
  std::vector<JsonValue> items;                           ///< kArray.
  std::vector<std::pair<std::string, JsonValue>> fields;  ///< kObject.

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses a complete JSON document (trailing whitespace allowed, anything
/// else is an error). Errors carry the byte offset of the offending input.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace emsim::sweep

#endif  // EMSIM_SWEEP_JSON_VALUE_H_

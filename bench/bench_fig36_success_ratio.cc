// Reproduces Figure 3.6 (a), (b), (c): success ratio vs cache size for
// inter-run prefetching at N = 1, 5, 10 — the probability that a demand
// fetch finds room to prefetch from every disk.

#include <cstdint>
#include <string>

#include "bench_util.h"
#include "core/config.h"
#include "stats/confidence.h"
#include "stats/series.h"
#include "util/str.h"
#include "workload/paper_configs.h"

namespace emsim {
namespace {

using core::MergeConfig;
using core::Strategy;
using core::SyncMode;

void Panel(int k, int d) {
  stats::Figure fig(
      StrFormat("Figure 3.6: Effect of Cache Size: All Disks One Run (%d runs, %d disks)",
                k, d),
      "Cache Size (blocks)", "Success Ratio");
  for (int n : {1, 5, 10}) {
    stats::Series& series = fig.AddSeries("N=" + std::to_string(n));
    for (int64_t c : workload::CacheSweep(k, d)) {
      MergeConfig cfg =
          MergeConfig::Paper(k, d, n, Strategy::kAllDisksOneRun, SyncMode::kUnsynchronized);
      cfg.cache_blocks = c;
      auto result = bench::Run(cfg);
      auto ci = stats::MeanConfidence95(result.success_ratio);
      series.Add(static_cast<double>(c), ci.mean, ci.half_width);
    }
  }
  bench::EmitFigure(fig);
}

}  // namespace
}  // namespace emsim

int main() {
  emsim::bench::Banner(
      "Figure 3.6",
      "Success ratio vs cache size: All Disks One Run, unsynchronized,\n"
      "N in {1,5,10}. Expected shape: each curve rises from ~0 to 1; larger\n"
      "N shifts the rise to larger caches (a DN-block batch needs more free\n"
      "frames); the success=1 knee matches the Fig. 3.5 time asymptote.");
  emsim::Panel(25, 5);
  emsim::Panel(50, 5);
  emsim::Panel(50, 10);
  emsim::bench::WriteJsonArtifact("fig36_success_ratio");
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/bench_extsort.dir/bench_extsort.cc.o"
  "CMakeFiles/bench_extsort.dir/bench_extsort.cc.o.d"
  "bench_extsort"
  "bench_extsort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <set>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "workload/depletion_generator.h"
#include "workload/paper_configs.h"
#include "workload/record_generator.h"

namespace emsim::workload {
namespace {

TEST(RecordGeneratorTest, DeterministicForOptions) {
  RecordGeneratorOptions opt;
  opt.seed = 9;
  RecordGenerator a(opt);
  RecordGenerator b(opt);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextKey(), b.NextKey());
  }
}

TEST(RecordGeneratorTest, UniformKeysMostlyDistinct) {
  RecordGeneratorOptions opt;
  auto keys = RecordGenerator(opt).Keys(10000);
  std::set<uint64_t> distinct(keys.begin(), keys.end());
  EXPECT_GT(distinct.size(), 9990u);
}

TEST(RecordGeneratorTest, ZipfKeysRepeatHotValues) {
  RecordGeneratorOptions opt;
  opt.distribution = KeyDistribution::kZipf;
  opt.zipf_theta = 1.0;
  opt.zipf_universe = 1000;
  auto keys = RecordGenerator(opt).Keys(10000);
  std::set<uint64_t> distinct(keys.begin(), keys.end());
  EXPECT_LT(distinct.size(), 1000u);  // Heavy reuse of hot keys.
}

TEST(RecordGeneratorTest, NearlySortedIsNearlySorted) {
  RecordGeneratorOptions opt;
  opt.distribution = KeyDistribution::kNearlySorted;
  opt.nearly_sorted_window = 8;
  auto keys = RecordGenerator(opt).Keys(5000);
  size_t inversions = 0;
  for (size_t i = 1; i < keys.size(); ++i) {
    inversions += keys[i] < keys[i - 1];
  }
  EXPECT_LT(inversions, keys.size() / 2);
  EXPECT_GT(inversions, 0u);  // But not exactly sorted.
}

TEST(RecordGeneratorTest, ReverseSortedDescends) {
  RecordGeneratorOptions opt;
  opt.distribution = KeyDistribution::kReverseSorted;
  auto keys = RecordGenerator(opt).Keys(100);
  EXPECT_TRUE(std::is_sorted(keys.rbegin(), keys.rend()));
}

TEST(DepletionTraceTest, UniformTraceIsValid) {
  auto trace = UniformDepletionTrace(7, 31, /*seed=*/5);
  EXPECT_TRUE(IsValidDepletionTrace(trace, 7, 31));
  // Different seeds give different orders.
  auto other = UniformDepletionTrace(7, 31, /*seed=*/6);
  EXPECT_NE(trace, other);
  EXPECT_TRUE(IsValidDepletionTrace(other, 7, 31));
}

TEST(DepletionTraceTest, RoundRobinShape) {
  auto trace = RoundRobinDepletionTrace(3, 2);
  std::vector<int> expect = {0, 1, 2, 0, 1, 2};
  EXPECT_EQ(trace, expect);
  EXPECT_TRUE(IsValidDepletionTrace(trace, 3, 2));
}

TEST(DepletionTraceTest, SequentialShape) {
  auto trace = SequentialDepletionTrace(2, 3);
  std::vector<int> expect = {0, 0, 0, 1, 1, 1};
  EXPECT_EQ(trace, expect);
  EXPECT_TRUE(IsValidDepletionTrace(trace, 2, 3));
}

TEST(DepletionTraceTest, ValidatorCatchesCorruption) {
  auto trace = RoundRobinDepletionTrace(3, 2);
  EXPECT_FALSE(IsValidDepletionTrace(trace, 3, 3));   // Wrong length.
  trace[0] = 1;                                       // Unbalanced counts.
  EXPECT_FALSE(IsValidDepletionTrace(trace, 3, 2));
  trace[0] = 5;                                       // Out of range.
  EXPECT_FALSE(IsValidDepletionTrace(trace, 3, 2));
}

TEST(PaperConfigsTest, DepthSweepMatchesFigureAxis) {
  auto sweep = Fig32DepthSweep();
  EXPECT_EQ(sweep.front(), 1);
  EXPECT_EQ(sweep.back(), 30);
  EXPECT_TRUE(std::is_sorted(sweep.begin(), sweep.end()));
}

TEST(PaperConfigsTest, CacheSweepsMatchPaperRanges) {
  EXPECT_EQ(CacheSweep(25, 5).back(), 1200);
  EXPECT_EQ(CacheSweep(50, 5).back(), 1600);
  EXPECT_EQ(CacheSweep(50, 10).back(), 3500);
  for (int64_t c : CacheSweep(25, 5)) {
    EXPECT_GE(c, 25);  // Never below one block per run.
  }
}

TEST(PaperConfigsTest, CpuSweepCoversFigure33) {
  auto sweep = Fig33CpuSweep();
  EXPECT_DOUBLE_EQ(sweep.front(), 0.0);
  EXPECT_DOUBLE_EQ(sweep.back(), 0.7);
}

TEST(PaperConfigsTest, Fig33CurvesAreTheFourStrategies) {
  auto curves = Fig33Curves();
  ASSERT_EQ(curves.size(), 4u);
  for (const auto& c : curves) {
    EXPECT_EQ(c.config.num_runs, 25);
    EXPECT_EQ(c.config.num_disks, 5);
    EXPECT_EQ(c.config.prefetch_depth, 10);
    EXPECT_TRUE(c.config.Validate().ok());
  }
  EXPECT_EQ(curves[0].config.strategy, core::Strategy::kAllDisksOneRun);
  EXPECT_EQ(curves[2].config.strategy, core::Strategy::kDemandRunOnly);
}

}  // namespace
}  // namespace emsim::workload

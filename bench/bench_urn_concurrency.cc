// Validation sweep for the paper's urn-game concurrency model: measured
// unsynchronized intra-run disk overlap vs the exact urn expectation and the
// asymptotic sqrt(pi D / 2) - 1/3 form, for D = 2..32 disks. The paper's
// headline here is that concurrency grows only as sqrt(D), far below D.

#include "analysis/urn_game.h"
#include "bench_util.h"
#include "core/config.h"
#include "stats/table.h"

int main() {
  using namespace emsim;
  using core::MergeConfig;
  using core::Strategy;
  using core::SyncMode;
  using stats::Table;

  bench::Banner("Urn-game concurrency sweep (analysis validation)",
                "Unsynchronized Demand Run Only with large N; k = 5D runs.\n"
                "Expected shape: measured overlap tracks the exact urn value\n"
                "(well below the D upper bound) and the asymptotic formula\n"
                "converges to the exact value as D grows.");

  Table table({"D", "best possible", "urn exact", "sqrt(piD/2)-1/3", "measured",
               "measured/urn"});
  for (int d : {2, 3, 5, 8, 10, 16, 20, 32}) {
    analysis::UrnGame game(d);
    MergeConfig cfg = MergeConfig::Paper(5 * d, d, 50, Strategy::kDemandRunOnly,
                                         SyncMode::kUnsynchronized);
    cfg.blocks_per_run = 400;
    auto result = bench::Run(cfg);
    double measured = result.MeanConcurrency();
    table.AddRow({Table::Cell(d, 0), Table::Cell(d, 0),
                  Table::Cell(game.ExpectedLength(), 3),
                  Table::Cell(game.AsymptoticLength(), 3), Table::Cell(measured, 3),
                  Table::Cell(measured / game.ExpectedLength(), 3)});
  }
  bench::EmitTable("Measured disk overlap vs urn-game model", table,
                   "finite N keeps the measurement slightly below the model; "
                   "the sqrt(D) scaling (not D) is the key shape");
  emsim::bench::WriteJsonArtifact("urn_concurrency");
  return 0;
}

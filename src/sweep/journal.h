#ifndef EMSIM_SWEEP_JOURNAL_H_
#define EMSIM_SWEEP_JOURNAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace emsim::sweep {

/// One append-only journal record. The journal is the durable truth about a
/// sweep run: which spec it is for, how it was sharded, what every shard
/// attempt did, and which artifacts were published with which content
/// digest. Records carry no wall-clock timestamps — ordering is the file
/// order, so journal bytes stay deterministic up to shard-completion
/// interleaving.
struct JournalRecord {
  enum class Kind {
    kRunStart,     ///< spec digest + shard plan; first record of a run.
    kShardStart,   ///< attempt launched (shard, attempt, artifact path).
    kShardDone,    ///< artifact published (path + content digest + bytes).
    kShardRetry,   ///< attempt failed, resubmission scheduled (detail = why).
    kShardFailed,  ///< retries exhausted (detail = why).
    kQuarantine,   ///< artifact failed verification, renamed *.corrupt.
    kReclaim,      ///< stale attempt artifact deleted by post-merge GC.
    kDrain,        ///< graceful drain began (detail = signal/reason).
    kRunDone,      ///< merge succeeded; the run is complete.
  };

  Kind kind = Kind::kRunStart;
  int shard = -1;    ///< Shard index (kShard*, kQuarantine), else -1.
  int attempt = 0;   ///< Attempt number (kShard*), else 0.
  std::string path;  ///< Artifact path (relative to the run dir) when relevant.
  uint64_t digest = 0;       ///< Artifact content digest (kShardDone).
  uint64_t size = 0;         ///< Artifact size in bytes (kShardDone).
  std::string detail;        ///< Failure reason / signal name / free text.
  // kRunStart only: the shard plan.
  uint64_t spec_digest = 0;
  int num_shards = 0;
  int total_tasks = 0;
};

const char* JournalRecordKindName(JournalRecord::Kind kind);

/// Append-only, fsync-per-record journal in `<run_dir>/journal.jsonl` — one
/// JSON object per line. Every Append survives a SIGKILL of the writer: the
/// record is flushed with fsync before Append returns, and a torn final line
/// (crash mid-write) is tolerated and ignored by Load.
class RunJournal {
 public:
  static constexpr const char* kFileName = "journal.jsonl";

  /// Opens (creating if absent) the journal for appending. Creates
  /// `run_dir` itself when missing.
  static Result<RunJournal> Open(const std::string& run_dir);

  RunJournal(RunJournal&& other) noexcept;
  RunJournal& operator=(RunJournal&& other) noexcept;
  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;
  ~RunJournal();

  /// Serializes `record` as one JSON line, appends it, fsyncs.
  Status Append(const JournalRecord& record);

  /// Parses every complete record in `<run_dir>/journal.jsonl`. A torn
  /// final line (no trailing newline) is dropped — it is the one record a
  /// crash may lose after its artifact side effects; resume re-verifies
  /// artifacts on disk, so nothing is trusted on the journal's word alone.
  static Result<std::vector<JournalRecord>> Load(const std::string& run_dir);

 private:
  RunJournal() = default;

  std::string path_;
  int fd_ = -1;
};

/// A shard's state reconstructed from the journal.
struct ShardLedger {
  int attempts = 0;
  bool done = false;
  std::string artifact_path;  ///< Relative to the run dir; valid when done.
  uint64_t artifact_digest = 0;
  std::string last_error;
};

/// The whole run's state reconstructed from the journal: the replayed
/// shard plan plus per-shard progress.
struct RunLedger {
  uint64_t spec_digest = 0;
  int num_shards = 0;
  int total_tasks = 0;
  bool drained = false;
  bool completed = false;  ///< kRunDone seen: merge already succeeded.
  std::map<int, ShardLedger> shards;
};

/// Replays journal records into a RunLedger. Fails on an empty journal or a
/// missing/invalid kRunStart.
Result<RunLedger> ReplayJournal(const std::vector<JournalRecord>& records);

}  // namespace emsim::sweep

#endif  // EMSIM_SWEEP_JOURNAL_H_

#ifndef EMSIM_EXTSORT_RUN_FORMATION_H_
#define EMSIM_EXTSORT_RUN_FORMATION_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "extsort/block_device.h"
#include "extsort/record.h"
#include "extsort/run_io.h"
#include "util/status.h"

namespace emsim::extsort {

/// How initial sorted runs are produced from unsorted input.
enum class RunFormationStrategy {
  /// Fill memory, sort, emit: every run is exactly `memory_records` long
  /// (except the last) — the paper's "individually sorting one memory-load
  /// of data at a time".
  kLoadSort,
  /// Replacement selection with a min-heap: runs average twice the memory
  /// size on random input (Knuth Vol. 3), fewer and longer runs.
  kReplacementSelection,
};

struct RunFormationOptions {
  size_t memory_records = 4096;  ///< Records that fit in the sort workspace.
  RunFormationStrategy strategy = RunFormationStrategy::kLoadSort;
  int64_t start_block = 0;       ///< First device block to write runs at.
};

/// Result of run formation.
struct RunFormationResult {
  std::vector<RunDescriptor> runs;
  int64_t next_free_block = 0;  ///< First block after the last run.
};

/// Sorts `input` into initial runs written contiguously on `device`.
Result<RunFormationResult> FormRuns(std::span<const Record> input, BlockDevice* device,
                                    const RunFormationOptions& options);

}  // namespace emsim::extsort

#endif  // EMSIM_EXTSORT_RUN_FORMATION_H_

#ifndef EMSIM_CORE_EXPERIMENT_H_
#define EMSIM_CORE_EXPERIMENT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/result.h"
#include "stats/accumulator.h"
#include "stats/confidence.h"
#include "util/status.h"

namespace emsim::core {

/// Aggregate of several independently seeded trials of one configuration —
/// the paper averages its trials the same way.
struct ExperimentResult {
  std::vector<MergeResult> trials;

  stats::Accumulator total_ms;
  stats::Accumulator success_ratio;
  stats::Accumulator concurrency;
  stats::Accumulator io_operations;
  stats::Accumulator cache_occupancy;

  double MeanTotalSeconds() const { return total_ms.Mean() / 1000.0; }
  stats::ConfidenceInterval TotalSecondsCi() const {
    auto ci = stats::MeanConfidence95(total_ms);
    ci.mean /= 1000.0;
    ci.half_width /= 1000.0;
    return ci;
  }
  double MeanSuccessRatio() const { return success_ratio.Mean(); }
  double MeanConcurrency() const { return concurrency.Mean(); }

  std::string ToString() const;
};

/// Per-trial runaway guard applied by the trial runners: a trial that
/// exceeds either bound is converted into a DeadlineExceeded failure (with
/// the offending config echoed) instead of hanging the whole experiment.
/// Zero disables a bound. Bounds already present on a config are kept (the
/// tighter of the two wins for the event cap; a nonzero config wall clock
/// wins outright since wall time is not additive across trials).
struct TrialDeadline {
  uint64_t max_sim_events = 0;  ///< Calendar events per trial (0 = unlimited).
  double max_wall_ms = 0.0;     ///< Wall-clock ms per trial (0 = unlimited).
};

/// One experiment point in a sweep: a named configuration and its trial
/// count. This is the unit the spec parser, the trial runners and the
/// sharded dispatcher all agree on.
struct SweepUnit {
  std::string name;
  MergeConfig config;
  int trials = 1;
};

/// Deterministic flattening of a set of SweepUnits into one global task
/// list: task index t maps to (unit, trial) in unit-major, trial-minor
/// order. Trial `i` of a unit runs with seed `config.seed + i`, exactly as
/// RunTrials seeds its trials. The flattening is pure arithmetic on the
/// unit list, so every process that builds a grid from the same units —
/// a single-machine sweep, a worker subprocess handed a shard of the index
/// space, the artifact merger — sees the identical task <-> (unit, trial)
/// correspondence. That shared numbering is what makes sharded execution
/// mergeable back into the bit-identical single-process aggregate.
class SweepGrid {
 public:
  SweepGrid() = default;
  explicit SweepGrid(std::vector<SweepUnit> units);

  struct Task {
    int unit = 0;
    int trial = 0;
  };

  int total_tasks() const { return total_tasks_; }
  int num_units() const { return static_cast<int>(units_.size()); }
  const std::vector<SweepUnit>& units() const { return units_; }

  /// Maps a global task index to its (unit, trial) pair.
  Task At(int global_index) const;

  /// First global task index of `unit` (its trials are contiguous).
  int UnitBegin(int unit) const { return offsets_[static_cast<size_t>(unit)]; }

  /// The fully configured per-trial MergeConfig for one task: the unit's
  /// config with the trial seed and the harness deadline applied.
  MergeConfig TaskConfig(int global_index, const TrialDeadline& deadline) const;

 private:
  std::vector<SweepUnit> units_;
  std::vector<int> offsets_;  // Prefix sums; size num_units() + 1.
  int total_tasks_ = 0;
};

/// Outcome of running a contiguous slice of a SweepGrid's task space.
/// Either every task in the range succeeded (`ok()`, `results[i]` holds
/// task begin+i), or `failed_task` names the lowest-index failing task and
/// `status` its error — the same lowest-index capture the parallel runners
/// have always used, so the failure a caller sees is independent of thread
/// count, shard count and scheduling order.
struct SweepRangeOutcome {
  std::vector<MergeResult> results;
  int failed_task = -1;
  Status status;

  bool ok() const { return failed_task < 0; }
};

/// Runs tasks [begin, end) of the grid on the shared worker pool with up to
/// `num_threads`-way parallelism (0 = hardware concurrency, 1 = inline on
/// the caller in index order). Task results are deterministic per task
/// index, independent of threads.
SweepRangeOutcome RunSweepRange(const SweepGrid& grid, int begin, int end, int num_threads,
                                const TrialDeadline& deadline = {});

/// Aggregates one unit's trials, in trial order, into an ExperimentResult.
/// Exposed so the shard merger can rebuild the exact aggregate a
/// single-process run would have produced from the same per-trial results.
ExperimentResult AggregateTrials(std::vector<MergeResult> trials);

/// Runs `num_trials` trials with seeds seed, seed+1, ... and aggregates.
/// Aborts on configuration errors (experiments are programmed, not user
/// input); use MergeSimulator::Run directly for Status-based handling.
ExperimentResult RunTrials(const MergeConfig& config, int num_trials,
                           const TrialDeadline& deadline = {});

/// Same trials, run on the process-wide worker pool with `num_threads`-way
/// parallelism (0 = hardware concurrency). Each trial's simulation is fully
/// independent and deterministic per seed, and trials are aggregated in seed
/// order, so the aggregate is bit-identical to RunTrials for every thread
/// count. A trial failure is reported from the joining thread (the worker
/// records the failure with the lowest trial index; the join aborts with its
/// status), never from inside a pool worker.
ExperimentResult RunTrialsParallel(const MergeConfig& config, int num_trials,
                                   int num_threads = 0,
                                   const TrialDeadline& deadline = {});

/// Runs `num_trials` trials of every config in `configs` on the shared
/// worker pool, flattening the config × trial grid into one task space so a
/// sweep keeps all threads busy even when per-config trial counts are small.
/// Results are aggregated per config, in the order given, with the same
/// bit-identical-to-serial guarantee as RunTrialsParallel.
std::vector<ExperimentResult> RunSweepParallel(const std::vector<MergeConfig>& configs,
                                               int num_trials, int num_threads = 0,
                                               const TrialDeadline& deadline = {});

/// Per-unit generalization of RunSweepParallel (units may differ in trial
/// count — the shape an experiment spec file produces). Aborts on the
/// lowest-index task failure like the other runners.
std::vector<ExperimentResult> RunSweep(const std::vector<SweepUnit>& units,
                                       int num_threads = 0,
                                       const TrialDeadline& deadline = {});

/// Default trial count used by the benches (the paper's count is lost to
/// OCR; 5 gives sub-1% confidence half-widths at these run lengths).
inline constexpr int kDefaultTrials = 5;

}  // namespace emsim::core

#endif  // EMSIM_CORE_EXPERIMENT_H_

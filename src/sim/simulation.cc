#include "sim/simulation.h"

#include <algorithm>
#include <limits>

#include "sim/process.h"

namespace emsim::sim {

namespace {
constexpr size_t kHeapArity = 4;
}  // namespace

Simulation::~Simulation() {
  // Destroy frames of processes still blocked on synchronization objects.
  // Their final awaiter never ran, so they are not in the calendar and no
  // other owner exists. Frame-local destructors must not touch the kernel.
  // Frames parked in the handle pool or in burst cells are live processes
  // too, so this sweep covers every pending coroutine entry as well.
  std::vector<LiveProcess> leftover;
  leftover.swap(live_);
  for (const LiveProcess& p : leftover) {
    p.handle.destroy();
  }
  // Callbacks still queued (e.g. after RunUntil stopped early) are destroyed
  // without being invoked.
  for (CallbackCell& cell : callback_pool_) {
    if (cell.invoke_and_destroy != nullptr && cell.destroy_only != nullptr) {
      cell.destroy_only(cell.storage);
    }
  }
}

void Simulation::Spawn(Process&& process) {
  auto handle = process.Release();
  EMSIM_CHECK(handle);
  Process::promise_type& promise = handle.promise();
  promise.sim = this;
  OnProcessCreated(handle, &promise.live_slot);
  ScheduleHandle(now_, handle);
}

uint32_t Simulation::AcquireCallbackSlot() {
  if (free_callback_slots_.empty()) {
    callback_pool_.emplace_back();
    return static_cast<uint32_t>(callback_pool_.size() - 1);
  }
  uint32_t slot = free_callback_slots_.back();
  free_callback_slots_.pop_back();
  return slot;
}

uint32_t Simulation::AcquireBurstSlot() {
  if (free_burst_slots_.empty()) {
    burst_pool_.emplace_back();
    return static_cast<uint32_t>(burst_pool_.size() - 1);
  }
  uint32_t slot = free_burst_slots_.back();
  free_burst_slots_.pop_back();
  return slot;
}

void Simulation::RenormalizeSeqs() {
  // Gather the pending entries in pop order, renumber 0..n-1 (preserving
  // their relative order), and reinstall. New pushes then continue from n,
  // so every future entry orders after every pending one — exactly the
  // pre-wrap contract. A sorted array is a valid min-heap, so the heap
  // backend reinstalls with a plain move.
  std::vector<CalEntry> pending;
  if (backend_ == CalendarBackend::kHeap) {
    pending.swap(calendar_);
    std::sort(pending.begin(), pending.end(), EarlierThan);
  } else {
    cq_.DrainInOrder(&pending);
  }
  for (size_t i = 0; i < pending.size(); ++i) {
    pending[i].seq = static_cast<uint32_t>(i);
  }
  next_seq_ = static_cast<uint32_t>(pending.size());
  if (backend_ == CalendarBackend::kHeap) {
    calendar_ = std::move(pending);
  } else {
    for (const CalEntry& entry : pending) {
      cq_.Push(entry);
    }
  }
}

void Simulation::HeapPush(CalEntry entry) {
  size_t i = calendar_.size();
  calendar_.push_back(entry);
  while (i > 0) {
    size_t parent = (i - 1) / kHeapArity;
    if (!EarlierThan(entry, calendar_[parent])) {
      break;
    }
    calendar_[i] = calendar_[parent];
    i = parent;
  }
  calendar_[i] = entry;
}

void Simulation::HeapPopRoot() {
  CalEntry last = calendar_.back();
  calendar_.pop_back();
  size_t n = calendar_.size();
  if (n == 0) {
    return;
  }
  // Bottom-up ("hole") deletion: sift the hole left by the root all the way
  // to a leaf, at each level moving up the earliest of the four children
  // (selected branchlessly — the three cmovs are cheaper than one
  // mispredicting `compare against last` branch per level), then bubble the
  // former last leaf up from there. The last leaf nearly always belongs near
  // the bottom, so the bubble-up loop exits after 0–2 iterations; the naive
  // top-down sift this replaced paid an extra unpredictable comparison at
  // every level and measured ~2x slower on the drain-the-calendar
  // microbenchmark.
  size_t i = 0;
  for (;;) {
    size_t first_child = i * kHeapArity + 1;
    if (first_child + (kHeapArity - 1) < n) {
      size_t b01 = EarlierThan(calendar_[first_child + 1], calendar_[first_child])
                       ? first_child + 1
                       : first_child;
      size_t b23 = EarlierThan(calendar_[first_child + 3], calendar_[first_child + 2])
                       ? first_child + 3
                       : first_child + 2;
      size_t best = EarlierThan(calendar_[b23], calendar_[b01]) ? b23 : b01;
      calendar_[i] = calendar_[best];
      i = best;
    } else if (first_child < n) {
      size_t best = first_child;
      for (size_t c = first_child + 1; c < n; ++c) {
        if (EarlierThan(calendar_[c], calendar_[best])) {
          best = c;
        }
      }
      calendar_[i] = calendar_[best];
      i = best;
    } else {
      break;
    }
  }
  while (i > 0) {
    size_t parent = (i - 1) / kHeapArity;
    if (!EarlierThan(last, calendar_[parent])) {
      break;
    }
    calendar_[i] = calendar_[parent];
    i = parent;
  }
  calendar_[i] = last;
}

void Simulation::DispatchBurst(uint32_t slot) {
  // Move the group to a local: a resumed member may schedule a fresh burst
  // (growing or reusing the pool), and neither may disturb the one being
  // dispatched. The slot itself stays out of the free list until the loop
  // finishes, then gets its (cleared) capacity back for reuse.
  std::vector<void*> group = std::move(burst_pool_[slot]);
  const size_t n = group.size();
  for (size_t i = 0; i < n; ++i) {
    // While members remain, the lone-runner fast path must stay off: the
    // calendar may be empty, but simulated time is not allowed to advance
    // past the members still owed a resume at now_.
    in_burst_dispatch_ = i + 1 < n;
    ++events_processed_;
    if (metric_resumes_ != nullptr) {
      metric_resumes_->Increment();
    }
    std::coroutine_handle<>::from_address(group[i]).resume();
  }
  in_burst_dispatch_ = false;
  group.clear();
  burst_pool_[slot] = std::move(group);
  free_burst_slots_.push_back(slot);
}

bool Simulation::Step() {
  CalEntry entry;
  if (backend_ == CalendarBackend::kHeap) {
    if (calendar_.empty()) {
      return false;
    }
    entry = calendar_.front();
    HeapPopRoot();
  } else {
    if (cq_.empty()) {
      return false;
    }
    entry = cq_.PopMin();
  }
  now_ = entry.time;
  const uint32_t tag = entry.payload & kTagMask;
  const uint32_t slot = entry.payload >> kTagBits;
  if (tag == kTagBurst) {
    // Burst groups count one processed event per member (inside the
    // dispatch loop), keeping events_processed() byte-identical with the
    // unbatched path.
    DispatchBurst(slot);
    return true;
  }
  ++events_processed_;
  if (metric_calendar_depth_ != nullptr) {
    metric_calendar_depth_->Update(now_, static_cast<double>(CalendarDepth()));
    (tag == kTagCallback ? metric_callbacks_ : metric_resumes_)->Increment();
  }
  if (tag == kTagCallback) {
    // Relocate the cell to a local and recycle the slot before invoking: the
    // body may schedule new callbacks (reusing this very slot, or growing the
    // pool vector), neither of which may disturb the callable mid-call.
    CallbackCell cell = callback_pool_[slot];
    callback_pool_[slot].invoke_and_destroy = nullptr;
    callback_pool_[slot].destroy_only = nullptr;
    free_callback_slots_.push_back(slot);
    if (cell.invoke_and_destroy != nullptr) {
      cell.invoke_and_destroy(cell.storage);
    }
  } else {
    void* address = handle_pool_[slot];
    handle_pool_[slot] = nullptr;
    free_handle_slots_.push_back(slot);
    std::coroutine_handle<>::from_address(address).resume();
  }
  return true;
}

void Simulation::AttachMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metric_resumes_ = nullptr;
    metric_callbacks_ = nullptr;
    metric_spawns_ = nullptr;
    metric_calendar_depth_ = nullptr;
    return;
  }
  metric_resumes_ = &metrics->GetCounter("sim.resumes");
  metric_callbacks_ = &metrics->GetCounter("sim.callbacks");
  metric_spawns_ = &metrics->GetCounter("sim.spawns");
  metric_calendar_depth_ = &metrics->GetTimeline("sim.calendar_depth");
}

void Simulation::Run() {
  in_run_loop_ = true;
  run_deadline_ = std::numeric_limits<SimTime>::infinity();
  while (Step()) {
  }
  in_run_loop_ = false;
}

bool Simulation::RunBounded(uint64_t max_events) {
  in_run_loop_ = true;
  run_deadline_ = std::numeric_limits<SimTime>::infinity();
  // Saturating cap: max_events of UINT64_MAX degenerates to Run().
  event_cap_ = events_processed_ <= UINT64_MAX - max_events ? events_processed_ + max_events
                                                            : UINT64_MAX;
  while (events_processed_ < event_cap_ && Step()) {
  }
  const bool drained = CalendarEmpty();
  event_cap_ = UINT64_MAX;
  in_run_loop_ = false;
  return drained;
}

void Simulation::RunUntil(SimTime deadline) {
  in_run_loop_ = true;
  run_deadline_ = deadline;
  while (!CalendarEmpty() && CalMinTime() <= deadline) {
    Step();
  }
  in_run_loop_ = false;
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace emsim::sim

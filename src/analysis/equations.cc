#include "analysis/equations.h"

#include "util/check.h"

namespace emsim::analysis {

namespace {
double SeekTermMs(const ModelParams& p, int n, int d) {
  // m * (k / (3 n d)) * S — the average seek for one block when requests
  // amortize the seek over n blocks and each disk holds k/d runs.
  return p.run_cylinders * (static_cast<double>(p.num_runs) / (3.0 * n * d)) *
         p.seek_ms_per_cylinder;
}
}  // namespace

double Eq1NoPrefetchSingleDisk(const ModelParams& p) {
  return SeekTermMs(p, 1, 1) + p.rotational_ms + p.transfer_ms;
}

double Eq2IntraRunSingleDisk(const ModelParams& p, int n) {
  EMSIM_CHECK(n >= 1);
  return SeekTermMs(p, n, 1) + p.rotational_ms / n + p.transfer_ms;
}

double Eq3NoPrefetchMultiDisk(const ModelParams& p) {
  return SeekTermMs(p, 1, p.num_disks) + p.rotational_ms + p.transfer_ms;
}

double Eq4IntraRunMultiDiskSync(const ModelParams& p, int n) {
  EMSIM_CHECK(n >= 1);
  return SeekTermMs(p, n, p.num_disks) + p.rotational_ms / n + p.transfer_ms;
}

double Eq5InterRunSync(const ModelParams& p, int n) {
  EMSIM_CHECK(n >= 1);
  const double d = p.num_disks;
  const double k = p.num_runs;
  const double m = p.run_cylinders;
  const double s = p.seek_ms_per_cylinder;
  return m * k * s / (3.0 * n * d * d) +
         2.0 * p.rotational_ms / (n * (d + 1.0)) + p.transfer_ms / d;
}

double ExpectedMaxUniform(double hi, int d) {
  EMSIM_CHECK(d >= 1);
  return hi * static_cast<double>(d) / (d + 1.0);
}

double LowerBoundPerBlockSingleDisk(const ModelParams& p) { return p.transfer_ms; }

double LowerBoundPerBlockMultiDisk(const ModelParams& p) {
  return p.transfer_ms / p.num_disks;
}

double TotalMs(const ModelParams& p, double per_block_ms) {
  return per_block_ms * static_cast<double>(p.TotalBlocks());
}

}  // namespace emsim::analysis

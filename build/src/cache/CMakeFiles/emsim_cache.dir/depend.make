# Empty dependencies file for emsim_cache.
# This may be replaced when dependencies are built.

#include "io/planner.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "disk/layout.h"
#include "io/run_state.h"
#include "util/check.h"
#include "util/str.h"

namespace emsim::io {

namespace {

/// Clamps an op's depth to what the run still holds on disk.
FetchOp MakeOp(const RunStates& runs, int run, int64_t n, bool is_demand) {
  const RunState& s = runs[run];
  FetchOp op;
  op.run = run;
  op.offset = s.next_fetch_offset;
  op.nblocks = std::min<int64_t>(n, s.RemainingOnDisk());
  op.is_demand = is_demand;
  EMSIM_CHECK(op.nblocks >= 1);
  return op;
}

/// Degraded intra-run depth for the mandatory demand op: when the demand
/// run's home disk is currently unusable (quarantined by repeated failures),
/// speculating deeper on it only queues more work behind the fault — fall
/// back to fetching exactly the block the merge is stalled on. Striped runs
/// have no single home disk, so they keep full depth.
int64_t DemandDepth(const VictimChooser::Context& ctx, int demand_run, int64_t n) {
  if (ctx.health == nullptr || ctx.layout == nullptr || ctx.layout->striped()) {
    return n;
  }
  return ctx.health->Usable(ctx.layout->DiskOf(demand_run), ctx.now) ? n : 1;
}

class DemandOnlyPlanner final : public PrefetchPlanner {
 public:
  explicit DemandOnlyPlanner(int n) : n_(n) { EMSIM_CHECK(n >= 1); }

  std::vector<FetchOp> Plan(const VictimChooser::Context& ctx, int demand_run) override {
    return {MakeOp(*ctx.runs, demand_run, DemandDepth(ctx, demand_run, n_),
                   /*is_demand=*/true)};
  }

  std::string name() const override { return StrFormat("demand-only(N=%d)", n_); }

 private:
  int n_;
};

class AllDisksOneRunPlanner final : public PrefetchPlanner {
 public:
  AllDisksOneRunPlanner(int n, std::unique_ptr<VictimChooser> chooser)
      : n_(n), chooser_(std::move(chooser)) {
    EMSIM_CHECK(n >= 1);
    EMSIM_CHECK(chooser_ != nullptr);
  }

  std::vector<FetchOp> Plan(const VictimChooser::Context& ctx, int demand_run) override {
    std::vector<FetchOp> ops;
    ops.push_back(MakeOp(*ctx.runs, demand_run, DemandDepth(ctx, demand_run, n_),
                         /*is_demand=*/true));
    const disk::RunLayout& layout = *ctx.layout;
    int demand_disk = layout.DiskOf(demand_run);
    for (int d = 0; d < layout.num_disks(); ++d) {
      if (d == demand_disk) {
        continue;
      }
      if (ctx.health != nullptr && !ctx.health->Usable(d, ctx.now)) {
        continue;  // Degraded fan-out: no speculative work for a sick disk.
      }
      std::vector<int> candidates;
      for (int r : layout.RunsOf(d)) {
        if (r != demand_run && !(*ctx.runs)[r].FullyRequested()) {
          candidates.push_back(r);
        }
      }
      if (candidates.empty()) {
        continue;  // This disk has nothing left to prefetch.
      }
      int victim = chooser_->Choose(ctx, candidates);
      ops.push_back(MakeOp(*ctx.runs, victim, n_, /*is_demand=*/false));
    }
    return ops;
  }

  std::string name() const override {
    return StrFormat("all-disks-one-run(N=%d, victim=%s)", n_, chooser_->name());
  }

 private:
  int n_;
  std::unique_ptr<VictimChooser> chooser_;
};

}  // namespace

std::unique_ptr<PrefetchPlanner> MakeDemandOnlyPlanner(int n) {
  return std::make_unique<DemandOnlyPlanner>(n);
}

std::unique_ptr<PrefetchPlanner> MakeAllDisksOneRunPlanner(
    int n, std::unique_ptr<VictimChooser> chooser) {
  return std::make_unique<AllDisksOneRunPlanner>(n, std::move(chooser));
}

}  // namespace emsim::io

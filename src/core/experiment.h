#ifndef EMSIM_CORE_EXPERIMENT_H_
#define EMSIM_CORE_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/result.h"
#include "stats/accumulator.h"
#include "stats/confidence.h"

namespace emsim::core {

/// Aggregate of several independently seeded trials of one configuration —
/// the paper averages its trials the same way.
struct ExperimentResult {
  std::vector<MergeResult> trials;

  stats::Accumulator total_ms;
  stats::Accumulator success_ratio;
  stats::Accumulator concurrency;
  stats::Accumulator io_operations;
  stats::Accumulator cache_occupancy;

  double MeanTotalSeconds() const { return total_ms.Mean() / 1000.0; }
  stats::ConfidenceInterval TotalSecondsCi() const {
    auto ci = stats::MeanConfidence95(total_ms);
    ci.mean /= 1000.0;
    ci.half_width /= 1000.0;
    return ci;
  }
  double MeanSuccessRatio() const { return success_ratio.Mean(); }
  double MeanConcurrency() const { return concurrency.Mean(); }

  std::string ToString() const;
};

/// Per-trial runaway guard applied by the trial runners: a trial that
/// exceeds either bound is converted into a DeadlineExceeded failure (with
/// the offending config echoed) instead of hanging the whole experiment.
/// Zero disables a bound. Bounds already present on a config are kept (the
/// tighter of the two wins for the event cap; a nonzero config wall clock
/// wins outright since wall time is not additive across trials).
struct TrialDeadline {
  uint64_t max_sim_events = 0;  ///< Calendar events per trial (0 = unlimited).
  double max_wall_ms = 0.0;     ///< Wall-clock ms per trial (0 = unlimited).
};

/// Runs `num_trials` trials with seeds seed, seed+1, ... and aggregates.
/// Aborts on configuration errors (experiments are programmed, not user
/// input); use MergeSimulator::Run directly for Status-based handling.
ExperimentResult RunTrials(const MergeConfig& config, int num_trials,
                           const TrialDeadline& deadline = {});

/// Same trials, run on the process-wide worker pool with `num_threads`-way
/// parallelism (0 = hardware concurrency). Each trial's simulation is fully
/// independent and deterministic per seed, and trials are aggregated in seed
/// order, so the aggregate is bit-identical to RunTrials for every thread
/// count. A trial failure is reported from the joining thread (the worker
/// records the failure with the lowest trial index; the join aborts with its
/// status), never from inside a pool worker.
ExperimentResult RunTrialsParallel(const MergeConfig& config, int num_trials,
                                   int num_threads = 0,
                                   const TrialDeadline& deadline = {});

/// Runs `num_trials` trials of every config in `configs` on the shared
/// worker pool, flattening the config × trial grid into one task space so a
/// sweep keeps all threads busy even when per-config trial counts are small.
/// Results are aggregated per config, in the order given, with the same
/// bit-identical-to-serial guarantee as RunTrialsParallel.
std::vector<ExperimentResult> RunSweepParallel(const std::vector<MergeConfig>& configs,
                                               int num_trials, int num_threads = 0,
                                               const TrialDeadline& deadline = {});

/// Default trial count used by the benches (the paper's count is lost to
/// OCR; 5 gives sub-1% confidence half-widths at these run lengths).
inline constexpr int kDefaultTrials = 5;

}  // namespace emsim::core

#endif  // EMSIM_CORE_EXPERIMENT_H_

#ifndef EMSIM_WORKLOAD_RECORD_GENERATOR_H_
#define EMSIM_WORKLOAD_RECORD_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace emsim::workload {

/// Key distributions for generated sort inputs.
enum class KeyDistribution {
  kUniform,        ///< Uniform 64-bit keys.
  kZipf,           ///< Zipf-skewed keys (many duplicates of hot keys).
  kNearlySorted,   ///< Ascending keys with bounded random displacement.
  kReverseSorted,  ///< Strictly descending (worst case for run formation
                   ///< heuristics like replacement selection).
};

/// Options for the record key generator.
struct RecordGeneratorOptions {
  KeyDistribution distribution = KeyDistribution::kUniform;
  double zipf_theta = 0.99;            ///< For kZipf.
  uint64_t zipf_universe = 1 << 20;    ///< Distinct keys for kZipf.
  uint64_t nearly_sorted_window = 64;  ///< Max displacement for kNearlySorted.
  uint64_t seed = 42;
};

/// Streams pseudo-random record keys for the external-sort examples and
/// benchmarks. Deterministic for a given options struct.
class RecordGenerator {
 public:
  explicit RecordGenerator(const RecordGeneratorOptions& options);

  /// Next key in the stream.
  uint64_t NextKey();

  /// Convenience: materializes `n` keys.
  std::vector<uint64_t> Keys(size_t n);

 private:
  RecordGeneratorOptions options_;
  Rng rng_;
  ZipfGenerator zipf_;
  uint64_t counter_ = 0;
};

}  // namespace emsim::workload

#endif  // EMSIM_WORKLOAD_RECORD_GENERATOR_H_

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig33_cpu_speed.dir/bench_fig33_cpu_speed.cc.o"
  "CMakeFiles/bench_fig33_cpu_speed.dir/bench_fig33_cpu_speed.cc.o.d"
  "bench_fig33_cpu_speed"
  "bench_fig33_cpu_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig33_cpu_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// The metrics registry's threading contract: one *unsynchronized*
// MetricsRegistry per simulation, never shared across threads —
// RunTrialsParallel runs one simulation (and thus one registry) per trial on
// worker threads, so the supported concurrent pattern is many independent
// registries ticking at once. SharedRegistry is the synchronized complement
// for the aggregation side (dispatcher observers, cross-trial roll-ups):
// one instance deliberately hammered from many threads. Both halves carry
// the `thread` label so the EMSIM_SANITIZE=thread CI job verifies there is
// no hidden shared state behind the unsynchronized API and no data race
// inside the synchronized one.

#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/shared_registry.h"

namespace emsim::obs {
namespace {

TEST(MetricsRegistryConcurrencyTest, IndependentRegistriesPerThread) {
  constexpr int kThreads = 4;
  constexpr int kTicks = 20000;
  std::vector<std::vector<MetricsRegistry::Sample>> samples(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&samples, w] {
      MetricsRegistry registry(/*enabled=*/true);
      Counter& events = registry.GetCounter("sim.events");
      Gauge& depth = registry.GetGauge("calendar.depth");
      Timeline& busy = registry.GetTimeline("disk.busy");
      for (int i = 0; i < kTicks; ++i) {
        events.Increment();
        depth.Set(static_cast<double>(i % 7));
        busy.Update(static_cast<double>(i), static_cast<double>(i % 2));
      }
      registry.FlushTimelines(static_cast<double>(kTicks));
      samples[static_cast<size_t>(w)] = registry.Samples();
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  // Every thread ran the identical deterministic program, so every export
  // must be identical — and nonempty.
  ASSERT_FALSE(samples[0].empty());
  for (int w = 1; w < kThreads; ++w) {
    ASSERT_EQ(samples[static_cast<size_t>(w)].size(), samples[0].size());
    for (size_t i = 0; i < samples[0].size(); ++i) {
      EXPECT_EQ(samples[static_cast<size_t>(w)][i].name, samples[0][i].name);
      EXPECT_EQ(samples[static_cast<size_t>(w)][i].value, samples[0][i].value);
    }
  }
}

TEST(MetricsRegistryConcurrencyTest, DisabledRegistriesPerThread) {
  // Disabled registries hand out per-registry sink instruments; with one
  // registry per thread the sinks are thread-local by construction.
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([] {
      MetricsRegistry registry(/*enabled=*/false);
      Counter& events = registry.GetCounter("sim.events");
      for (int i = 0; i < 10000; ++i) {
        events.Increment();
      }
      EXPECT_TRUE(registry.Samples().empty());
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
}

TEST(SharedRegistryConcurrencyTest, ConcurrentUpdatesAggregateExactly) {
  constexpr int kThreads = 4;
  constexpr int kTicks = 20000;
  SharedRegistry shared(/*enabled=*/true);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&shared] {
      for (int i = 0; i < kTicks; ++i) {
        shared.IncrementCounter("dispatch.events");
        shared.AddGauge("dispatch.inflight", 1.0);
        shared.AddGauge("dispatch.inflight", -1.0);
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  double events = -1.0;
  for (const MetricsRegistry::Sample& sample : shared.Samples()) {
    if (sample.name == "dispatch.events") {
      events = sample.value;
    }
    if (sample.name == "dispatch.inflight") {
      EXPECT_EQ(sample.value, 0.0);
    }
  }
  // No lost update: every increment from every thread lands.
  EXPECT_EQ(events, static_cast<double>(kThreads) * kTicks);
}

TEST(SharedRegistryConcurrencyTest, SnapshotsAreConsistentUnderWriters) {
  // Each writer iteration bumps `a` then `b`, so in any atomic-point
  // snapshot a - b is between 0 and the writer count. A torn snapshot (or
  // a data race TSan would flag) breaks that envelope.
  constexpr int kWriters = 3;
  constexpr int kTicks = 10000;
  constexpr int kSnapshots = 200;
  SharedRegistry shared(/*enabled=*/true);
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&shared] {
      for (int i = 0; i < kTicks; ++i) {
        shared.IncrementCounter("pair.a");
        shared.IncrementCounter("pair.b");
      }
    });
  }
  std::thread reader([&shared] {
    for (int s = 0; s < kSnapshots; ++s) {
      double a = 0.0;
      double b = 0.0;
      for (const MetricsRegistry::Sample& sample : shared.Samples()) {
        if (sample.name == "pair.a") {
          a = sample.value;
        } else if (sample.name == "pair.b") {
          b = sample.value;
        }
      }
      EXPECT_GE(a, b);
      EXPECT_LE(a - b, static_cast<double>(kWriters));
    }
  });
  for (std::thread& writer : writers) {
    writer.join();
  }
  reader.join();
  double a = 0.0;
  double b = 0.0;
  for (const MetricsRegistry::Sample& sample : shared.Samples()) {
    if (sample.name == "pair.a") {
      a = sample.value;
    } else if (sample.name == "pair.b") {
      b = sample.value;
    }
  }
  EXPECT_EQ(a, static_cast<double>(kWriters) * kTicks);
  EXPECT_EQ(b, static_cast<double>(kWriters) * kTicks);
}

}  // namespace
}  // namespace emsim::obs

# Empty dependencies file for write_traffic_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for external_sort_demo.
# This may be replaced when dependencies are built.

// Fault injection under the parallel trial runner: every trial owns its
// private FaultPlan / HealthTracker / retry driver, so fault-injected
// experiments must stay bit-identical to serial execution for every thread
// count (the TSan `thread` CI job runs this suite).

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/experiment.h"
#include "fault/fault_plan.h"

namespace emsim::core {
namespace {

MergeConfig FaultyConfig() {
  MergeConfig cfg = MergeConfig::Paper(6, 3, 4, Strategy::kAllDisksOneRun,
                                       SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 60;
  cfg.fault.media_error_rate = 0.05;
  cfg.fault.latency_spike_rate = 0.1;
  cfg.fault.retry.max_retries = 30;
  cfg.fault.retry.backoff_base_ms = 5.0;
  return cfg;
}

TEST(FaultParallelTest, ParallelTrialsBitIdenticalToSerial) {
  MergeConfig cfg = FaultyConfig();
  ExperimentResult serial = RunTrials(cfg, 6);
  for (int threads : {1, 2, 4}) {
    ExperimentResult parallel = RunTrialsParallel(cfg, 6, threads);
    ASSERT_EQ(parallel.trials.size(), serial.trials.size()) << threads;
    for (size_t t = 0; t < serial.trials.size(); ++t) {
      EXPECT_DOUBLE_EQ(parallel.trials[t].total_ms, serial.trials[t].total_ms)
          << "threads=" << threads << " trial=" << t;
      EXPECT_EQ(parallel.trials[t].fault.media_errors,
                serial.trials[t].fault.media_errors)
          << "threads=" << threads << " trial=" << t;
      EXPECT_EQ(parallel.trials[t].fault.retries, serial.trials[t].fault.retries)
          << "threads=" << threads << " trial=" << t;
    }
    EXPECT_DOUBLE_EQ(parallel.total_ms.Mean(), serial.total_ms.Mean());
  }
}

TEST(FaultParallelTest, SweepWithFaultPointsMatchesSerialPoints) {
  MergeConfig clean = FaultyConfig();
  clean.fault = fault::FaultConfig{};  // Fault-free point in the same sweep.
  MergeConfig faulty = FaultyConfig();
  std::vector<ExperimentResult> sweep = RunSweepParallel({clean, faulty}, 3, 4);
  ASSERT_EQ(sweep.size(), 2u);

  ExperimentResult serial_clean = RunTrials(clean, 3);
  ExperimentResult serial_faulty = RunTrials(faulty, 3);
  for (size_t t = 0; t < 3; ++t) {
    EXPECT_DOUBLE_EQ(sweep[0].trials[t].total_ms, serial_clean.trials[t].total_ms);
    EXPECT_DOUBLE_EQ(sweep[1].trials[t].total_ms, serial_faulty.trials[t].total_ms);
    EXPECT_FALSE(sweep[0].trials[t].fault.injection_enabled);
    EXPECT_TRUE(sweep[1].trials[t].fault.injection_enabled);
  }
}

TEST(FaultParallelTest, DeadlinePlumbingIsHarmlessWhenGenerous) {
  MergeConfig cfg = FaultyConfig();
  ExperimentResult unbounded = RunTrialsParallel(cfg, 4, 4);
  TrialDeadline deadline;
  deadline.max_sim_events = 100'000'000;
  deadline.max_wall_ms = 600'000.0;
  ExperimentResult bounded = RunTrialsParallel(cfg, 4, 4, deadline);
  for (size_t t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(bounded.trials[t].total_ms, unbounded.trials[t].total_ms) << t;
  }
}

}  // namespace
}  // namespace emsim::core

#ifndef EMSIM_SWEEP_SHARD_H_
#define EMSIM_SWEEP_SHARD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.h"
#include "core/result.h"
#include "util/status.h"
#include "workload/experiment_spec.h"

namespace emsim::sweep {

/// Version of the shard-artifact schema below. A worker and merger must
/// agree on it exactly — the codec is a bit-exact wire format, not a
/// human-facing export.
inline constexpr int kShardSchemaVersion = 1;

/// FNV-1a over raw bytes — the digest the artifact integrity footer and the
/// run journal both record.
uint64_t Fnv1aDigest(std::string_view bytes);

/// Appends the integrity footer to an encoded artifact payload:
///
///     #emsim-shard-footer v1 len=<payload bytes> fnv1a=<16-hex digest>
///
/// The footer makes every artifact file self-verifying: a truncated write
/// loses the footer, a truncated or bit-flipped payload disagrees with the
/// recorded length/digest. UnsealShardArtifact refuses both, naming the
/// failure, so resume and merge never trust a torn file.
std::string SealShardArtifact(std::string payload);

/// Verifies and strips the integrity footer; returns the payload. Errors are
/// kCorruption and name the defect (missing footer / length mismatch /
/// digest mismatch).
Result<std::string> UnsealShardArtifact(std::string_view file_contents);

/// A contiguous half-open slice [begin, end) of a SweepGrid's global task
/// index space.
struct ShardRange {
  int begin = 0;
  int end = 0;

  int size() const { return end - begin; }
};

/// Deterministic contiguous split of `total_tasks` into `num_shards`
/// near-equal slices: the first `total_tasks % num_shards` shards get one
/// extra task. Shards past the task count come out empty. Every process
/// computes the same split from (total, k, N) alone — no coordination.
ShardRange ShardSlice(int total_tasks, int shard_index, int num_shards);

/// Canonical units for a parsed experiment spec, preserving spec order.
std::vector<core::SweepUnit> UnitsFromSpecs(const std::vector<workload::ExperimentSpec>& specs);

/// FNV-1a digest of the canonical spec rendering of `units` (name, config,
/// trials). Workers stamp it into their artifacts; the merger refuses to
/// combine shards whose digest disagrees with the spec it loaded, so a
/// stale shard file from a different sweep cannot silently corrupt a merge.
uint64_t SpecDigest(const std::vector<core::SweepUnit>& units);

/// One task's outcome inside a shard artifact. Failures are data, not
/// aborts: a worker records them and exits cleanly so the merger can
/// surface the lowest-global-index failure exactly as a single-process run
/// would have.
struct ShardTask {
  int task = 0;  ///< Global task index.
  bool ok = true;
  core::MergeResult result;  ///< Valid when ok.
  Status error;              ///< Valid when !ok.
};

/// A decoded shard artifact.
struct ShardArtifact {
  int shard_index = 0;
  int shard_count = 0;
  int total_tasks = 0;
  ShardRange range;
  uint64_t spec_digest = 0;
  std::vector<ShardTask> tasks;  ///< Ascending by global task index.
};

/// Renders one shard's outcome as a JSON artifact. The per-task MergeResult
/// encoding is exact: every field (including Accumulator internals) is
/// written in a form that decodes back bit-for-bit, so aggregates built
/// from decoded results are byte-identical to single-process aggregates.
std::string EncodeShardArtifact(const ShardArtifact& artifact);

/// Parses and validates a shard artifact document.
Result<ShardArtifact> DecodeShardArtifact(const std::string& text);

/// Runs one shard of the grid (the slice ShardSlice picks for
/// `shard_index`/`shard_count`) and packages the outcome as an artifact.
/// Task failures are captured per task, not surfaced as a Status — only the
/// lowest-index failure is recorded, mirroring the parallel runners'
/// failure capture.
ShardArtifact RunShard(const core::SweepGrid& grid, int shard_index, int shard_count,
                       int num_threads, const core::TrialDeadline& deadline);

}  // namespace emsim::sweep

#endif  // EMSIM_SWEEP_SHARD_H_
